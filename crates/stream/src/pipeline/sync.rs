//! Raw-sample ingestion: frame synchronization and derandomization.
//!
//! Models a CCSDS-style downlink framing just deeply enough to exercise
//! the pipeline's ingress hazards: each frame is an attached sync marker
//! ([`ASM`]) followed by a whitened payload of little-endian `i16`
//! samples. The synchronizer hunts for the marker byte-by-byte, locks,
//! decodes frames, and — when corruption eats an expected marker — counts
//! a sync loss and re-hunts, discarding bytes (counted) until lock
//! returns. [`whiten`] is the self-inverse LFSR randomizer applied to
//! every payload, reset per frame so one lost frame never desynchronizes
//! the next.

use super::report::SyncStats;

/// Attached sync marker preceding every frame (the CCSDS 32-bit ASM).
pub const ASM: [u8; 4] = [0x1A, 0xCF, 0xFC, 0x1D];

/// Quantization scale: sample `x` travels as `round(x · SAMPLE_SCALE)`
/// clamped to `i16`.
pub const SAMPLE_SCALE: f64 = 4096.0;

/// Applies the frame-synchronous pseudo-randomizer (self-inverse).
///
/// Keystream: an 8-bit Fibonacci LFSR seeded all-ones per frame, taps at
/// bits 7, 6, 4, 2 — XORed over the payload so long runs of constant
/// samples still toggle the line. Applying it twice restores the input
/// bitwise; the per-frame reset keeps frames independently decodable.
pub fn whiten(payload: &mut [u8]) {
    let mut state: u8 = 0xFF;
    for byte in payload {
        let mut key = 0u8;
        for _ in 0..8 {
            let out = state >> 7;
            let fb = ((state >> 7) ^ (state >> 6) ^ (state >> 4) ^ (state >> 2)) & 1;
            state = (state << 1) | fb;
            key = (key << 1) | out;
        }
        *byte ^= key;
    }
}

/// Encodes one frame of samples into `out`: ASM, then the whitened
/// little-endian `i16` payload (quantized by [`SAMPLE_SCALE`], clamped).
pub fn encode_frame(samples: &[f64], out: &mut Vec<u8>) {
    out.extend_from_slice(&ASM);
    let start = out.len();
    for &x in samples {
        let q = (x * SAMPLE_SCALE).round().clamp(i16::MIN as f64, i16::MAX as f64) as i16;
        out.extend_from_slice(&q.to_le_bytes());
    }
    whiten(&mut out[start..]);
}

/// Encodes `signal` as consecutive `frame_len`-sample frames (trailing
/// partial frame dropped) — the byte stream a clean downlink would carry.
pub fn encode_stream(signal: &[f64], frame_len: usize) -> Vec<u8> {
    assert!(frame_len >= 1, "frame_len must be >= 1");
    let mut out = Vec::with_capacity((signal.len() / frame_len) * (4 + 2 * frame_len));
    for frame in signal.chunks_exact(frame_len) {
        encode_frame(frame, &mut out);
    }
    out
}

/// Streaming frame synchronizer: bytes in, decoded sample frames out.
#[derive(Debug)]
pub struct FrameSync {
    frame_len: usize,
    buf: Vec<u8>,
    locked: bool,
    bytes_in: u64,
    bytes_skipped: u64,
    frames_synced: u64,
    sync_losses: u64,
}

impl FrameSync {
    /// Creates a synchronizer for `frame_len`-sample frames.
    pub fn new(frame_len: usize) -> Self {
        assert!(frame_len >= 1, "frame_len must be >= 1");
        FrameSync {
            frame_len,
            buf: Vec::new(),
            locked: false,
            bytes_in: 0,
            bytes_skipped: 0,
            frames_synced: 0,
            sync_losses: 0,
        }
    }

    /// Samples per frame.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> SyncStats {
        SyncStats {
            bytes_in: self.bytes_in,
            bytes_skipped: self.bytes_skipped,
            frames_synced: self.frames_synced,
            sync_losses: self.sync_losses,
            locked: self.locked,
        }
    }

    /// Feeds `bytes` in; calls `emit` once per fully synchronized frame,
    /// in stream order, with the dewhitened, dequantized samples.
    ///
    /// Chunking-invariant: any split of the same byte stream produces the
    /// same emitted frames and final stats.
    pub fn push(&mut self, bytes: &[u8], emit: &mut dyn FnMut(Vec<f64>)) {
        self.bytes_in += bytes.len() as u64;
        self.buf.extend_from_slice(bytes);
        let payload = 2 * self.frame_len;
        loop {
            if !self.locked {
                match find_asm(&self.buf) {
                    Some(i) => {
                        self.bytes_skipped += i as u64;
                        self.buf.drain(..i);
                        self.locked = true;
                    }
                    None => {
                        // Keep the last 3 bytes — a marker may straddle
                        // this chunk boundary.
                        let keep = self.buf.len().min(ASM.len() - 1);
                        let skip = self.buf.len() - keep;
                        self.bytes_skipped += skip as u64;
                        self.buf.drain(..skip);
                        return;
                    }
                }
            }
            if self.buf.len() < ASM.len() {
                return;
            }
            if self.buf[..ASM.len()] != ASM {
                // The expected marker is gone — corruption in the marker
                // itself or a truncated frame. Count the loss, shed one
                // byte, and re-hunt.
                self.sync_losses += 1;
                self.locked = false;
                self.bytes_skipped += 1;
                self.buf.drain(..1);
                continue;
            }
            if self.buf.len() < ASM.len() + payload {
                return;
            }
            let mut frame_bytes = self.buf[ASM.len()..ASM.len() + payload].to_vec();
            self.buf.drain(..ASM.len() + payload);
            whiten(&mut frame_bytes);
            let samples = frame_bytes
                .chunks_exact(2)
                .map(|b| i16::from_le_bytes([b[0], b[1]]) as f64 / SAMPLE_SCALE)
                .collect();
            self.frames_synced += 1;
            emit(samples);
        }
    }
}

fn find_asm(buf: &[u8]) -> Option<usize> {
    buf.windows(ASM.len()).position(|w| w == ASM)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(len: usize) -> Vec<f64> {
        (0..len).map(|i| (i as f64 - len as f64 / 2.0) / SAMPLE_SCALE).collect()
    }

    fn collect_frames(sync: &mut FrameSync, bytes: &[u8], chunk: usize) -> Vec<Vec<f64>> {
        let mut frames = Vec::new();
        for c in bytes.chunks(chunk.max(1)) {
            sync.push(c, &mut |f| frames.push(f));
        }
        frames
    }

    #[test]
    fn whiten_is_an_involution_and_not_identity() {
        let original: Vec<u8> = (0..=255).collect();
        let mut buf = original.clone();
        whiten(&mut buf);
        assert_ne!(buf, original);
        whiten(&mut buf);
        assert_eq!(buf, original);
    }

    #[test]
    fn round_trip_is_exact_for_quantized_samples() {
        // Samples on the quantization grid survive the i16 link bitwise.
        let signal = ramp(64);
        let stream = encode_stream(&signal, 16);
        let mut sync = FrameSync::new(16);
        let frames = collect_frames(&mut sync, &stream, usize::MAX);
        assert_eq!(frames.len(), 4);
        let decoded: Vec<f64> = frames.concat();
        assert_eq!(decoded, signal);
        let s = sync.stats();
        assert_eq!(s.frames_synced, 4);
        assert_eq!(s.sync_losses, 0);
        assert_eq!(s.bytes_skipped, 0);
        assert!(s.locked);
    }

    #[test]
    fn chunking_invariant() {
        let signal = ramp(96);
        let mut stream = vec![0xAB, 0xCD]; // leading garbage before first ASM
        stream.extend(encode_stream(&signal, 24));
        let reference = {
            let mut sync = FrameSync::new(24);
            (collect_frames(&mut sync, &stream, usize::MAX), sync.stats())
        };
        for chunk in [1, 3, 7, 50] {
            let mut sync = FrameSync::new(24);
            let frames = collect_frames(&mut sync, &stream, chunk);
            assert_eq!((frames, sync.stats()), reference, "chunk={chunk}");
        }
        assert_eq!(reference.1.bytes_skipped, 2);
    }

    #[test]
    fn corrupted_marker_loses_one_frame_then_resyncs() {
        let signal = ramp(80);
        let mut stream = encode_stream(&signal, 16); // 5 frames
        let frame_bytes = 4 + 2 * 16;
        stream[2 * frame_bytes] ^= 0xFF; // kill frame 2's ASM byte 0
        let mut sync = FrameSync::new(16);
        let frames = collect_frames(&mut sync, &stream, 11);
        // Frames 0,1 then 3,4 decode; frame 2 is lost to the hunt.
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[0], signal[..16].to_vec());
        assert_eq!(frames[2], signal[48..64].to_vec());
        let s = sync.stats();
        assert_eq!(s.sync_losses, 1);
        assert!(s.bytes_skipped >= frame_bytes as u64);
        assert!(s.locked);
    }
}

//! Analysis windows and the COLA (constant-overlap-add) test.
//!
//! The STFT engine multiplies each frame by an analysis window and
//! resynthesizes by plain overlap-add; the round trip is exact wherever
//! the shifted window copies sum to a constant — the COLA property
//! `Σ_k w(t + k·hop) = c`. Periodic Hann and Hamming are COLA at any hop
//! dividing `n/2`; the rectangular window is COLA at `hop = n`
//! (and any hop dividing n).

/// Analysis window shape (periodic variants, as the STFT convention wants).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Window {
    /// All-ones window — COLA only for non-overlapping frames.
    Rect,
    /// Periodic Hann `0.5 − 0.5·cos(2πt/n)` — COLA for `hop | n/2`.
    Hann,
    /// Periodic Hamming `0.54 − 0.46·cos(2πt/n)` — COLA for `hop | n/2`.
    Hamming,
}

impl Window {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Window::Rect => "rect",
            Window::Hann => "hann",
            Window::Hamming => "hamming",
        }
    }

    /// Sample `t` of the length-`n` periodic window.
    pub fn sample(self, t: usize, n: usize) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t as f64 / n as f64;
        match self {
            Window::Rect => 1.0,
            Window::Hann => 0.5 - 0.5 * phase.cos(),
            Window::Hamming => 0.54 - 0.46 * phase.cos(),
        }
    }

    /// Fills `buf` with the length-`buf.len()` window.
    pub fn fill(self, buf: &mut [f64]) {
        let n = buf.len();
        for (t, slot) in buf.iter_mut().enumerate() {
            *slot = self.sample(t, n);
        }
    }
}

/// Overlap-add profile of `window` at `hop`: returns `(gain, max_rel_dev)`
/// where `gain` is the mean of `s(t) = Σ_k w(t + k·hop)` over one hop
/// period and `max_rel_dev` the largest relative deviation from it. A
/// window/hop pair is COLA when the deviation is ~0 (≤ 1e-9).
pub fn cola_profile(window: &[f64], hop: usize) -> (f64, f64) {
    assert!(hop >= 1 && hop <= window.len(), "hop must be in 1..=window len");
    let mut sums = vec![0.0f64; hop];
    for (t, &w) in window.iter().enumerate() {
        sums[t % hop] += w;
    }
    let gain = sums.iter().sum::<f64>() / hop as f64;
    let max_dev =
        sums.iter().map(|&s| (s - gain).abs()).fold(0.0f64, f64::max) / gain.abs().max(1e-300);
    (gain, max_dev)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(w: Window, n: usize) -> Vec<f64> {
        let mut buf = vec![0.0; n];
        w.fill(&mut buf);
        buf
    }

    #[test]
    fn hann_and_hamming_are_cola_at_half_and_quarter_hop() {
        for w in [Window::Hann, Window::Hamming] {
            let buf = filled(w, 256);
            for hop in [128usize, 64, 32] {
                let (gain, dev) = cola_profile(&buf, hop);
                assert!(dev < 1e-12, "{} hop={hop}: dev={dev}", w.name());
                assert!(gain > 0.0);
            }
        }
    }

    #[test]
    fn rect_is_cola_at_full_hop_only_among_non_divisors() {
        let buf = filled(Window::Rect, 64);
        let (gain, dev) = cola_profile(&buf, 64);
        assert!(dev < 1e-15);
        assert!((gain - 1.0).abs() < 1e-15);
        // hop = 48 leaves an uneven stack: not COLA.
        let (_, dev) = cola_profile(&buf, 48);
        assert!(dev > 0.1);
    }

    #[test]
    fn hann_is_not_cola_at_odd_hop() {
        let buf = filled(Window::Hann, 256);
        let (_, dev) = cola_profile(&buf, 100);
        assert!(dev > 1e-3, "dev={dev}");
    }

    #[test]
    fn window_names() {
        assert_eq!(Window::Hann.name(), "hann");
        assert_eq!(Window::Rect.sample(7, 64), 1.0);
        assert!(Window::Hann.sample(0, 64).abs() < 1e-15);
    }
}

//! Floating-point round-off noise model for FFT (§8.1 of the paper).
//!
//! Following Weinstein's analysis, an N-point floating-point FFT of a
//! zero-mean input with component variance σ₀² accumulates round-off noise
//! with noise-to-signal ratio `σ_E²/σ_X² = 2 σ_ε² log₂N`, where σ_ε is the
//! per-operation rounding error. Gentleman & Sande's empirical value
//! `σ_ε² = (0.21)·2^(-2t)` is used with `t = 52` mantissa bits for `f64`.
//!
//! The checksum residual compared against η is the *sum* of output errors,
//! so the paper propagates the per-element noise through the weighted sum
//! and takes the conservative upper bound `m·σ_e` for an m-point part.

/// Mantissa bits of an IEEE-754 double.
pub const F64_MANTISSA_BITS: u32 = 52;

/// Per-operation rounding std-dev `σ_ε = √0.21 · 2^(-t)` (Gentleman–Sande).
pub fn sigma_eps(mantissa_bits: u32) -> f64 {
    0.21f64.sqrt() * 2.0f64.powi(-(mantissa_bits as i32))
}

/// Std-dev of the round-off error of a single output element of an m-point
/// FFT with zero-mean inputs of component std-dev `sigma0`:
/// `σ_e = √(2·m·σ₀²·σ_ε²·log₂m)`.
pub fn output_roundoff_std(m: usize, sigma0: f64, mantissa_bits: u32) -> f64 {
    if m < 2 {
        return 0.0;
    }
    let se = sigma_eps(mantissa_bits);
    (2.0 * m as f64 * sigma0 * sigma0 * se * se * (m as f64).log2()).sqrt()
}

/// Paper's conservative bound on the checksum-sum round-off of an m-point
/// part: `σ_roe = m·σ_e` (upper end of the `log₂m·σ_e … m·σ_e` range).
pub fn checksum_roundoff_std(m: usize, sigma0: f64, mantissa_bits: u32) -> f64 {
    m as f64 * output_roundoff_std(m, sigma0, mantissa_bits)
}

/// Second-part variant: the k-point FFTs see inputs of std-dev `√m·σ₀`
/// (the output scale of the first part), giving
/// `σ_roe2 = k·√(2k·m·σ₀²·σ_ε²·log₂k)`.
pub fn checksum_roundoff_std_second(k: usize, m: usize, sigma0: f64, mantissa_bits: u32) -> f64 {
    if k < 2 {
        return 0.0;
    }
    let se = sigma_eps(mantissa_bits);
    let input_var = m as f64 * sigma0 * sigma0;
    k as f64 * (2.0 * k as f64 * input_var * se * se * (k as f64).log2()).sqrt()
}

/// Memory-checksum round-off (§8.2): summing `m` elements of std-dev
/// `sqrt(var)` loses about `m·√var·σ_ε`.
pub fn memory_sum_roundoff_std(m: usize, value_std: f64, mantissa_bits: u32) -> f64 {
    m as f64 * value_std * sigma_eps(mantissa_bits)
}

/// Per-bin round-off std-dev of the batch-linearity residual
/// `FFT(Σᵢ wᵢxᵢ)[p] − Σᵢ wᵢ·FFT(xᵢ)[p]`, where `weight_norm_sq = Σᵢ wᵢ²`.
///
/// The checksum transform sees an input of component variance
/// `(Σwᵢ²)·σ₀²`, so its per-bin error is `output_roundoff_std` at that
/// scale; the reference side sums `B` independent per-bin errors with
/// weights `wᵢ`, contributing the same `√(Σwᵢ²)` factor again (the O(B)
/// summation round-off is negligible next to the transform noise). The
/// two are independent, hence the `√2`. Unlike the in-transform checksum
/// residual this is a *per-element* comparison — no factor-`m` sum
/// amplification.
pub fn batch_residual_std(n: usize, weight_norm_sq: f64, sigma0: f64, mantissa_bits: u32) -> f64 {
    (2.0 * weight_norm_sq).sqrt() * output_roundoff_std(n, sigma0, mantissa_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_eps_scale() {
        let se = sigma_eps(F64_MANTISSA_BITS);
        // ≈ 0.458 * 2.22e-16 ≈ 1.0e-16
        assert!(se > 5e-17 && se < 2e-16, "{se}");
    }

    #[test]
    fn output_noise_grows_with_size() {
        let s0 = (1.0f64 / 3.0).sqrt();
        let a = output_roundoff_std(1 << 10, s0, F64_MANTISSA_BITS);
        let b = output_roundoff_std(1 << 14, s0, F64_MANTISSA_BITS);
        assert!(b > a);
        assert!(a > 0.0);
        assert_eq!(output_roundoff_std(1, s0, F64_MANTISSA_BITS), 0.0);
    }

    #[test]
    fn paper_magnitude_sanity() {
        // For N = 2^25 split as m = 2^13: the paper's Est1 is ~1.45e-8 with
        // η = 3√m σ_roe; check the model lands within an order of magnitude.
        let m = 1 << 13;
        let s0 = (1.0f64 / 3.0).sqrt();
        let sroe = checksum_roundoff_std(m, s0, F64_MANTISSA_BITS);
        let eta1 = 3.0 * (m as f64).sqrt() * sroe;
        assert!(eta1 > 1e-9 && eta1 < 1e-6, "eta1={eta1}");
    }

    #[test]
    fn second_part_noise_exceeds_first_for_balanced_split() {
        // Inputs to the second part are √m times larger, so its residual
        // bound should dominate (paper Table 4: Est2 ≫ Est1).
        let (k, m) = (1 << 12, 1 << 13);
        let s0 = (1.0f64 / 3.0).sqrt();
        let a = checksum_roundoff_std(m, s0, F64_MANTISSA_BITS);
        let b = checksum_roundoff_std_second(k, m, s0, F64_MANTISSA_BITS);
        assert!(b > a);
    }

    #[test]
    fn memory_sum_noise_is_tiny() {
        let s = memory_sum_roundoff_std(1 << 13, 1.0, F64_MANTISSA_BITS);
        assert!(s < 1e-11);
        assert!(s > 0.0);
    }
}

//! Round-off error analysis and detection-threshold selection (§8 of
//! Liang et al., SC '17).
//!
//! Finite-precision FFTs leave nonzero checksum residuals even when fault
//! free; thresholds η must sit above the round-off floor of each protected
//! part but as low as possible for coverage. This crate provides:
//!
//! * [`model`] — Weinstein/Gentleman-Sande noise propagation for the
//!   first-part, second-part, offline, and memory checksums;
//! * [`threshold`] — the paper's `η = 3√size·σ_roe` selection per part;
//! * [`mod@throughput`] — the `1/(3−2Φ(·))` throughput model (Table 4);
//! * [`calibrate`] — empirical calibration from fault-free runs (Table 6's
//!   protocol).

pub mod calibrate;
pub mod model;
pub mod threshold;
pub mod throughput;

pub use calibrate::Calibrator;
pub use model::{
    batch_residual_std, checksum_roundoff_std, checksum_roundoff_std_second,
    memory_sum_roundoff_std, output_roundoff_std, sigma_eps, F64_MANTISSA_BITS,
};
pub use threshold::{batch_thresholds, scaled, thresholds_for_split, Thresholds};
pub use throughput::{empirical_throughput, throughput};

//! Throughput model (§8.1): the fraction of useful runs when fault-free
//! executions are occasionally mis-flagged by a threshold η.
//!
//! `throughput(η, N, σ) = 1 / (3 − 2Φ(η/(√N σ)))`: a false positive costs a
//! retry plus re-verification, hence the specific form. At `η = 3σ√N` this
//! evaluates to ≈0.997.

use ftfft_numeric::normal_cdf;

/// Theoretical throughput for threshold `eta` with residual scale
/// `sqrt_n_sigma = √N·σ`.
pub fn throughput(eta: f64, sqrt_n_sigma: f64) -> f64 {
    if sqrt_n_sigma <= 0.0 {
        return 1.0;
    }
    1.0 / (3.0 - 2.0 * normal_cdf(eta / sqrt_n_sigma))
}

/// Empirical throughput from a campaign: `runs / (runs + retries)` — every
/// false positive triggers one retry of the protected part.
pub fn empirical_throughput(runs: u64, false_positive_retries: u64) -> f64 {
    if runs == 0 {
        return 1.0;
    }
    runs as f64 / (runs + false_positive_retries) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_sigma_gives_paper_value() {
        let t = throughput(3.0, 1.0);
        assert!((t - 0.997).abs() < 5e-4, "{t}");
    }

    #[test]
    fn monotone_in_eta() {
        let mut prev = 0.0;
        for i in 0..10 {
            let t = throughput(i as f64, 1.0);
            assert!(t >= prev);
            prev = t;
        }
        assert!(throughput(10.0, 1.0) > 0.999_999);
    }

    #[test]
    fn zero_eta_costs_half_the_runs() {
        // Φ(0)=0.5 → throughput = 1/2: every second run is a false alarm.
        assert!((throughput(0.0, 1.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empirical_counts() {
        assert_eq!(empirical_throughput(0, 0), 1.0);
        assert_eq!(empirical_throughput(100, 0), 1.0);
        assert!((empirical_throughput(997, 3) - 0.997).abs() < 1e-9);
    }
}

//! Empirical threshold calibration.
//!
//! Table 6's protocol: run the scheme fault-free a number of times, record
//! the maximum observed checksum residual, and set η to a small multiple of
//! that bound so throughput is ~100%. This complements the closed-form
//! model in [`crate::threshold`], which can be loose on real hardware.

use ftfft_numeric::RunningStats;

/// Accumulates fault-free residuals and derives a calibrated η.
#[derive(Clone, Debug, Default)]
pub struct Calibrator {
    stats: RunningStats,
}

impl Calibrator {
    /// Creates an empty calibrator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one fault-free residual observation.
    pub fn observe(&mut self, residual: f64) {
        self.stats.push(residual);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Largest fault-free residual seen.
    pub fn max_residual(&self) -> f64 {
        if self.stats.count() == 0 {
            0.0
        } else {
            self.stats.max()
        }
    }

    /// Mean residual.
    pub fn mean_residual(&self) -> f64 {
        self.stats.mean()
    }

    /// Calibrated threshold: `headroom ×` the observed maximum (the paper
    /// sets η to a "rough upper bound" of the fault-free residuals).
    pub fn eta(&self, headroom: f64) -> f64 {
        self.max_residual() * headroom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_max_and_mean() {
        let mut c = Calibrator::new();
        for r in [1e-10, 3e-10, 2e-10] {
            c.observe(r);
        }
        assert_eq!(c.count(), 3);
        assert!((c.max_residual() - 3e-10).abs() < 1e-24);
        assert!((c.mean_residual() - 2e-10).abs() < 1e-12);
        assert!((c.eta(2.0) - 6e-10).abs() < 1e-24);
    }

    #[test]
    fn empty_calibrator_gives_zero_eta() {
        let c = Calibrator::new();
        assert_eq!(c.eta(3.0), 0.0);
        assert_eq!(c.max_residual(), 0.0);
    }
}

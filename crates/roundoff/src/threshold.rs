//! Detection-threshold (η) selection for the ABFT schemes.
//!
//! η trades throughput (fault-free runs flagged faulty → useless retries)
//! against coverage (real faults below η slip through). §8 sets
//! `η = 3·√size·σ_roe` per protected part, which the normal model puts at
//! ≈99.7% throughput. The *offline* scheme has one part of size N, so its η
//! is far larger than the online scheme's per-sub-FFT thresholds — the root
//! of the paper's Table 5 detectability gap.

use crate::model::{
    checksum_roundoff_std, checksum_roundoff_std_second, memory_sum_roundoff_std, F64_MANTISSA_BITS,
};

/// Thresholds for a two-layer online scheme (and the offline whole-FFT one).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Thresholds {
    /// η for each first-part m-point FFT.
    pub eta1: f64,
    /// η for each second-part k-point FFT.
    pub eta2: f64,
    /// η for the offline whole-transform check (size N).
    pub eta_offline: f64,
    /// Tolerance for memory-checksum comparisons on the input scale.
    pub eta_mem_in: f64,
    /// Tolerance for memory-checksum comparisons on the intermediate scale
    /// (first-part outputs are √m larger).
    pub eta_mem_mid: f64,
    /// Tolerance for memory-checksum comparisons on the output scale.
    pub eta_mem_out: f64,
}

/// Model-based thresholds for an `N = k·m` split with input component
/// std-dev `sigma0`.
pub fn thresholds_for_split(n: usize, k: usize, m: usize, sigma0: f64) -> Thresholds {
    assert_eq!(k * m, n, "split mismatch");
    let t = F64_MANTISSA_BITS;
    let sroe1 = checksum_roundoff_std(m, sigma0, t);
    let sroe2 = checksum_roundoff_std_second(k, m, sigma0, t);
    // Offline: one check over the full N-point transform. Its inputs have
    // std σ0 and the transform is N-point, so the same bound with size N.
    let sroe_off = checksum_roundoff_std(n, sigma0, t);

    // Memory sums: input elements ~σ0, intermediate ~√m·σ0, output ~√N·σ0.
    let mem_in = memory_sum_roundoff_std(m.max(k), sigma0, t);
    let mem_mid = memory_sum_roundoff_std(m.max(k), (m as f64).sqrt() * sigma0, t);
    let mem_out = memory_sum_roundoff_std(n, (n as f64).sqrt() * sigma0, t);

    // The Gentleman–Sande σ_ε is an *average-case* constant and the rA
    // weights near the geometric-series pole amplify individual terms, so
    // the raw 3σ bound sits within ~2× of real residuals. A fixed headroom
    // keeps throughput at ~100% (Table 4) while the detectability gap of
    // Table 5 (orders of magnitude) is unaffected.
    const HEADROOM: f64 = 4.0;
    Thresholds {
        eta1: HEADROOM * 3.0 * (m as f64).sqrt() * sroe1,
        eta2: HEADROOM * 3.0 * (k as f64).sqrt() * sroe2,
        eta_offline: HEADROOM * 3.0 * (n as f64).sqrt() * sroe_off,
        // 6σ on the memory sums: they are cheap exact sums, so the model
        // underestimates relative to fused-multiply hardware; headroom
        // avoids false positives without hurting coverage (deltas of
        // interest are ≫ these scales).
        eta_mem_in: 6.0 * mem_in.max(f64::EPSILON),
        eta_mem_mid: 6.0 * mem_mid.max(f64::EPSILON),
        eta_mem_out: 6.0 * mem_out.max(f64::EPSILON),
    }
}

/// Per-side detection thresholds for the batch-linearity check of a
/// `b`-member batch of `n`-point transforms, given the squared 2-norms of
/// the two weight vectors (`Σᵢ wᵢ²` per side).
///
/// The batch check compares *every* output bin, so the flagging statistic
/// is the **maximum** of `n` per-bin residuals — a 3σ per-bin bound would
/// false-positive almost surely at large `n`. The Gaussian extremal bound
/// `E[max] ≈ √(2·ln n)·σ` replaces the 3 with `3 + √(2·ln n)`, and the
/// same empirical `HEADROOM` as [`thresholds_for_split`] absorbs the
/// model's average-case σ_ε. Floored at `f64::EPSILON` so degenerate
/// sizes never produce a zero threshold.
pub fn batch_thresholds(
    n: usize,
    sigma0: f64,
    weight_norm_sq_1: f64,
    weight_norm_sq_2: f64,
) -> (f64, f64) {
    const HEADROOM: f64 = 4.0;
    let t = F64_MANTISSA_BITS;
    let extremal = 3.0 + (2.0 * (n.max(2) as f64).ln()).sqrt();
    let eta = |wsq: f64| {
        (HEADROOM * extremal * crate::model::batch_residual_std(n, wsq, sigma0, t))
            .max(f64::EPSILON)
    };
    (eta(weight_norm_sq_1), eta(weight_norm_sq_2))
}

/// Scales model thresholds by an empirical safety factor (used after
/// calibration finds the model tight or loose on a given machine).
pub fn scaled(t: Thresholds, factor: f64) -> Thresholds {
    Thresholds {
        eta1: t.eta1 * factor,
        eta2: t.eta2 * factor,
        eta_offline: t.eta_offline * factor,
        eta_mem_in: t.eta_mem_in * factor,
        eta_mem_mid: t.eta_mem_mid * factor,
        eta_mem_out: t.eta_mem_out * factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_thresholds_are_far_below_offline() {
        let n = 1 << 20;
        let (k, m) = (1 << 10, 1 << 10);
        let t = thresholds_for_split(n, k, m, (1.0f64 / 3.0).sqrt());
        assert!(t.eta1 < t.eta_offline / 100.0, "eta1={} off={}", t.eta1, t.eta_offline);
        assert!(t.eta2 < t.eta_offline, "eta2={} off={}", t.eta2, t.eta_offline);
        assert!(t.eta1 > 0.0 && t.eta2 > 0.0);
    }

    #[test]
    fn second_part_threshold_dominates_first() {
        let t = thresholds_for_split(1 << 16, 1 << 8, 1 << 8, 1.0);
        assert!(t.eta2 > t.eta1);
    }

    #[test]
    fn memory_thresholds_ordered_by_scale() {
        let t = thresholds_for_split(1 << 16, 1 << 8, 1 << 8, 1.0);
        assert!(t.eta_mem_in < t.eta_mem_mid);
        assert!(t.eta_mem_mid < t.eta_mem_out);
    }

    #[test]
    fn scaling() {
        let t = thresholds_for_split(1 << 10, 1 << 5, 1 << 5, 1.0);
        let s = scaled(t, 2.0);
        assert_eq!(s.eta1, 2.0 * t.eta1);
        assert_eq!(s.eta_mem_out, 2.0 * t.eta_mem_out);
    }
}

//! Parallel in-place online ABFT FFT on a simulated message-passing
//! machine (§5–§6 of Liang et al., SC '17).
//!
//! The paper evaluates on TIANHE-2 with MPI; this crate substitutes a
//! deterministic in-process machine — one OS thread per rank, a full
//! channel mesh with `Isend`/`Irecv`/`Wait` semantics, and an optional α–β
//! network model so communication–computation overlap is measurable. The
//! code paths are the paper's: a six-step transform with three block
//! transposes, checksummed communication, ABFT-protected local FFTs (the
//! in-place FFT 2 via [`ftfft_core::InPlaceFtPlan`]), DMR twiddles, and
//! the Algorithm 3 double-buffered overlap pipeline.
//!
//! Entry point: [`ParallelFft`] with a [`ParallelScheme`] (the four bars
//! of Fig 8: FFTW / FT-FFTW / opt-FFTW / opt-FT-FFTW).

pub mod machine;
pub mod network;
pub mod pool;
pub mod pooled;
pub mod scheme;
pub mod sixstep;
pub mod transpose;

pub use machine::{run_ranks, Comm, RecvHandle};
pub use network::NetworkModel;
pub use pool::{resolve_threads, ThreadPool, THREADS_ENV};
pub use pooled::{LaneScratch, PooledFtFft, PooledWorkspace};
pub use scheme::ParallelScheme;
pub use sixstep::ParallelFft;
pub use transpose::{exchange, BlockProtection};

//! Block all-to-all transposes (the three "Tran" stages of the six-step
//! algorithm), in blocking and pipelined (Algorithm 3) variants, with
//! optional per-block checksums.
//!
//! A transposition exchanges the i-th block of processor j with the j-th
//! block of processor i. The *blocking* variant mirrors FFTW's
//! sendrecv-per-partner pattern (each exchange pays the full network
//! latency serially); the *pipelined* variant posts sends early and fills
//! the in-flight windows with block generation and received-block
//! processing — the paper's communication–computation overlap.

use ftfft_checksum::{open_block, sealed_message, MemVerdict, BLOCK_CHECKSUM_WORDS};
use ftfft_core::FtReport;
use ftfft_fault::{FaultInjector, InjectionCtx, Site};
use ftfft_numeric::Complex64;

use crate::machine::Comm;

/// How blocks are protected in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockProtection {
    /// Raw payloads.
    None,
    /// Two checksum words per block; single-element corruption is repaired
    /// on receive.
    Sealed {
        /// Which transpose this is (1, 2, 3) — keys the injection site.
        phase: u8,
    },
}

/// Exchanges blocks using the generic callbacks.
///
/// * `make_block(dest)` produces the payload for `dest` (length `block`);
/// * `consume(src, payload)` integrates a received payload.
///
/// `pipelined` selects Algorithm 3 (double-buffered overlap) vs the
/// blocking sendrecv schedule. Returns the per-rank fault report delta.
#[allow(clippy::too_many_arguments)]
pub fn exchange(
    comm: &Comm,
    protection: BlockProtection,
    tol: f64,
    pipelined: bool,
    injector: &dyn FaultInjector,
    mut make_block: impl FnMut(usize) -> Vec<Complex64>,
    mut consume: impl FnMut(usize, &mut [Complex64]),
) -> FtReport {
    let rank = comm.rank();
    let p = comm.size();
    let ctx = InjectionCtx { rank };
    let mut rep = FtReport::new();

    let seal = |dest: usize, payload: Vec<Complex64>| -> Vec<Complex64> {
        match protection {
            BlockProtection::None => payload,
            BlockProtection::Sealed { phase } => {
                let mut msg = sealed_message(&payload);
                injector.inject(ctx, Site::CommBlock { from: rank, to: dest, phase }, &mut msg);
                msg
            }
        }
    };
    let open = |src: usize,
                mut msg: Vec<Complex64>,
                rep: &mut FtReport,
                consume: &mut dyn FnMut(usize, &mut [Complex64])| {
        match protection {
            BlockProtection::None => consume(src, &mut msg),
            BlockProtection::Sealed { .. } => {
                debug_assert!(msg.len() >= BLOCK_CHECKSUM_WORDS);
                rep.checks += 1;
                let (verdict, payload) = open_block(&mut msg, tol);
                match verdict {
                    MemVerdict::Clean => {}
                    MemVerdict::Located { .. } => {
                        rep.comm_corrected += 1;
                        rep.mem_detected += 1;
                    }
                    MemVerdict::Unlocatable => {
                        rep.mem_detected += 1;
                        rep.uncorrectable += 1;
                    }
                }
                consume(src, payload);
            }
        }
    };

    // Self block never travels.
    let mut own = make_block(rank);
    consume(rank, &mut own);
    if p == 1 {
        return rep;
    }

    if !pipelined {
        // Blocking sendrecv schedule: one partner at a time.
        for step in 1..p {
            let to = (rank + step) % p;
            let from = (rank + p - step) % p;
            let msg = seal(to, make_block(to));
            comm.isend(to, msg);
            let incoming = comm.recv(from);
            open(from, incoming, &mut rep, &mut consume);
        }
        return rep;
    }

    // Algorithm 3: double-buffered pipeline. Send step i+1 before waiting
    // on step i; process step i−1 while step i is in flight.
    let sched: Vec<usize> = (1..p).map(|i| (rank + i) % p).collect();
    let rsched: Vec<usize> = (1..p).map(|i| (rank + p - i) % p).collect();

    let first = seal(sched[0], make_block(sched[0]));
    comm.isend(sched[0], first);
    let mut pending: Option<(usize, Vec<Complex64>)> = None;
    for idx in 0..sched.len() {
        if idx + 1 < sched.len() {
            let next = seal(sched[idx + 1], make_block(sched[idx + 1]));
            comm.isend(sched[idx + 1], next);
        }
        if let Some((src, msg)) = pending.take() {
            open(src, msg, &mut rep, &mut consume);
        }
        let msg = comm.recv(rsched[idx]);
        pending = Some((rsched[idx], msg));
    }
    if let Some((src, msg)) = pending.take() {
        open(src, msg, &mut rep, &mut consume);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_ranks;
    use ftfft_fault::{FaultKind, NoFaults, ScriptedFault, ScriptedInjector};
    use ftfft_numeric::complex::c64;

    /// Reference all-to-all: rank r block j ends as rank j block r.
    fn run_transpose(
        p: usize,
        pipelined: bool,
        protection: BlockProtection,
    ) -> Vec<Vec<Complex64>> {
        run_ranks(p, None, |comm| {
            let rank = comm.rank();
            let b = 4usize;
            let local: Vec<Complex64> = (0..p * b)
                .map(|i| c64(rank as f64, (i / b) as f64 * 100.0 + (i % b) as f64))
                .collect();
            let mut out = vec![Complex64::ZERO; p * b];
            let _ = exchange(
                &comm,
                protection,
                1e-9,
                pipelined,
                &NoFaults,
                |dest| local[dest * b..(dest + 1) * b].to_vec(),
                |src, payload| out[src * b..(src + 1) * b].copy_from_slice(payload),
            );
            out
        })
    }

    fn check_transposed(outs: &[Vec<Complex64>], p: usize) {
        let b = 4usize;
        for (j, out) in outs.iter().enumerate() {
            for r in 0..p {
                for t in 0..b {
                    // Block r of rank j's output came from rank r's block j.
                    let v = out[r * b + t];
                    assert_eq!(v.re, r as f64);
                    assert_eq!(v.im, j as f64 * 100.0 + t as f64);
                }
            }
        }
    }

    #[test]
    fn blocking_unsealed() {
        let outs = run_transpose(4, false, BlockProtection::None);
        check_transposed(&outs, 4);
    }

    #[test]
    fn pipelined_unsealed() {
        let outs = run_transpose(4, true, BlockProtection::None);
        check_transposed(&outs, 4);
    }

    #[test]
    fn sealed_both_modes() {
        for pipelined in [false, true] {
            let outs = run_transpose(8, pipelined, BlockProtection::Sealed { phase: 1 });
            check_transposed(&outs, 8);
        }
    }

    #[test]
    fn single_rank_is_local_copy() {
        let outs = run_transpose(1, true, BlockProtection::Sealed { phase: 2 });
        check_transposed(&outs, 1);
    }

    #[test]
    fn corrupted_block_repaired_in_flight() {
        let p = 4;
        let outs = run_ranks(p, None, |comm| {
            let rank = comm.rank();
            let b = 8usize;
            let inj = ScriptedInjector::new(vec![ScriptedFault::new(
                Site::CommBlock { from: 1, to: 2, phase: 1 },
                3,
                FaultKind::AddDelta { re: 50.0, im: -50.0 },
            )]);
            let local: Vec<Complex64> = (0..p * b).map(|i| c64(rank as f64, i as f64)).collect();
            let mut out = vec![Complex64::ZERO; p * b];
            let rep = exchange(
                &comm,
                BlockProtection::Sealed { phase: 1 },
                1e-9,
                false,
                &inj,
                |dest| local[dest * b..(dest + 1) * b].to_vec(),
                |src, payload| out[src * b..(src + 1) * b].copy_from_slice(payload),
            );
            (out, rep)
        });
        // Rank 2 must have repaired the corrupted block from rank 1.
        let (out2, rep2) = &outs[2];
        assert_eq!(rep2.comm_corrected, 1, "{rep2:?}");
        for t in 0..8 {
            assert_eq!(out2[8 + t], c64(1.0, (2 * 8 + t) as f64));
        }
        // Everyone else clean.
        for (r, (_, rep)) in outs.iter().enumerate() {
            if r != 2 {
                assert_eq!(rep.comm_corrected, 0, "rank {r}");
            }
        }
    }
}

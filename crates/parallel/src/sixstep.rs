//! The six-step parallel in-place FFT with online ABFT (§5–§6, Fig 6).
//!
//! Global layout: `N = p·n` with rank `r` owning `x[r·n .. (r+1)·n]`.
//! Using the split `N = n × p` (inner p-point DFTs over the rank axis):
//!
//! 1. **Tran1** — block transpose so rank `r` holds the `n/p` columns
//!    `c ∈ [r·n/p, (r+1)·n/p)` of the `p × n` matrix;
//! 2. **FFT1** — `n/p` p-point FFTs (stride `n/p`), each ABFT-protected in
//!    FT mode with incremental input pairs generated while receiving;
//! 3. **Tran2** — block transpose delivering `Z[c] = Y[c][rank]` for all
//!    `c`; the twiddle `ω_N^{c·rank}` (DMR in FT mode) and the FFT2 input
//!    CMCG are applied per received block — overlapped in `opt` modes;
//! 4. **FFT2** — the local n-point in-place transform: plain three-layer,
//!    or [`InPlaceFtPlan`] with per-sub-FFT backups and a DMR middle layer;
//! 5. **Tran3** — block transpose of the decimated output, followed by the
//!    local interleave `out[u·p + src] = block_src[u]`.
//!
//! Communication blocks carry two checksum words in FT mode (repair of
//! single in-flight corruptions); the pipelined transpose of Algorithm 3
//! hides block generation, verification, twiddles and CMCG behind the
//! in-flight windows.

use std::sync::Arc;

use ftfft_checksum::{
    ccv, combined_checksum, combined_decode, decode, input_checksum_vector, mem_checksum,
    CombinedChecksum, IncrementalSlots, MemVerdict,
};
use ftfft_core::{FtReport, InPlaceFtPlan};
use ftfft_fault::{FaultInjector, InjectionCtx, Part, Site};
use ftfft_fft::{Direction, FftPlan, Planner, ThreeLayerPlan};
use ftfft_numeric::{cis, Complex64};
use ftfft_roundoff::{checksum_roundoff_std, F64_MANTISSA_BITS};

use crate::machine::{run_ranks, Comm};
use crate::network::NetworkModel;
use crate::scheme::ParallelScheme;
use crate::transpose::{exchange, BlockProtection};

/// A reusable parallel FFT plan.
pub struct ParallelFft {
    n_total: usize,
    p: usize,
    scheme: ParallelScheme,
    network: Option<NetworkModel>,
    max_retries: u32,
    /// p-point sub-plan for FFT1.
    fft_p: Arc<FftPlan>,
    /// `rA` for the p-point FFTs.
    ra_p: Vec<Complex64>,
    /// Protected FFT2 plan (FT modes).
    inplace: Arc<InPlaceFtPlan>,
    /// Plain FFT2 plan.
    three: Arc<ThreeLayerPlan>,
    /// `rA` for FFT2's k-point layers (caller-side CMCG weights).
    ra_k2: Vec<Complex64>,
    /// CCV threshold for the p-point FFT1 transforms.
    eta_fft1: f64,
    /// Tolerance for communication-block and output memory sums.
    tol_comm: f64,
}

impl ParallelFft {
    /// Plans a parallel FFT of `n_total` points over `p` ranks.
    ///
    /// # Panics
    /// Panics unless `p ≥ 1`, `p² | n_total` (the six-step layout needs
    /// `n/p` whole blocks per rank).
    pub fn new(
        n_total: usize,
        p: usize,
        scheme: ParallelScheme,
        network: Option<NetworkModel>,
        sigma0: f64,
        max_retries: u32,
    ) -> Self {
        assert!(p >= 1, "need at least one rank");
        assert!(
            n_total.is_multiple_of(p * p),
            "six-step layout needs p² | N (got N={n_total}, p={p})"
        );
        let n = n_total / p;
        let dir = Direction::Forward;
        let planner = Planner::new();
        let fft_p = planner.plan(p, dir);
        let ra_p = input_checksum_vector(p, dir);
        let sigma_fft2_in = (p as f64).sqrt() * sigma0;
        let inplace = Arc::new(InPlaceFtPlan::new(n, dir, sigma_fft2_in, max_retries));
        let three = Arc::new(ThreeLayerPlan::new(&planner, n, dir));
        let ra_k2 = input_checksum_vector(inplace.three().k(), dir);
        let t = F64_MANTISSA_BITS;
        let eta_fft1 = (12.0 * (p as f64).sqrt() * checksum_roundoff_std(p, sigma0, t)).max(1e-12);
        // Block sums over n/p values of magnitude ~√p·σ0 (post-FFT1 they
        // grow); generous but still far below any injected fault.
        let tol_comm = 1e-6;
        ParallelFft {
            n_total,
            p,
            scheme,
            network,
            max_retries,
            fft_p,
            ra_p,
            inplace,
            three,
            ra_k2,
            eta_fft1,
            tol_comm,
        }
    }

    /// Total transform size.
    pub fn n_total(&self) -> usize {
        self.n_total
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.p
    }

    /// Scheme in force.
    pub fn scheme(&self) -> ParallelScheme {
        self.scheme
    }

    /// Runs the transform on `input` (length `n_total`), returning the
    /// output in natural order and the merged per-rank report.
    pub fn run(
        &self,
        input: &[Complex64],
        injector: &dyn FaultInjector,
    ) -> (Vec<Complex64>, FtReport) {
        assert_eq!(input.len(), self.n_total);
        let n = self.n_total / self.p;
        let results = run_ranks(self.p, self.network, |comm| {
            let rank = comm.rank();
            let local = input[rank * n..(rank + 1) * n].to_vec();
            self.run_rank(&comm, local, injector)
        });
        let mut out = Vec::with_capacity(self.n_total);
        let mut rep = FtReport::new();
        for (local_out, local_rep) in results {
            out.extend_from_slice(&local_out);
            rep.merge(&local_rep);
        }
        (out, rep)
    }

    /// One rank's pipeline (exposed for the harness' per-rank timing).
    pub fn run_rank(
        &self,
        comm: &Comm,
        x: Vec<Complex64>,
        injector: &dyn FaultInjector,
    ) -> (Vec<Complex64>, FtReport) {
        let p = self.p;
        let rank = comm.rank();
        let n = self.n_total / p;
        let b = n / p;
        let ctx = InjectionCtx { rank };
        let ft = self.scheme.protected();
        let ov = self.scheme.overlap();
        let mut rep = FtReport::new();
        let protection = |phase: u8| {
            if ft {
                BlockProtection::Sealed { phase }
            } else {
                BlockProtection::None
            }
        };

        // ---- Tran1: gather this rank's columns -------------------------
        let mut bmat = vec![Complex64::ZERO; n];
        let mut slots1 = IncrementalSlots::new(b);
        {
            let slots1 = &mut slots1;
            let ra_p = &self.ra_p;
            let r = exchange(
                comm,
                protection(1),
                self.tol_comm,
                ov,
                injector,
                |dest| x[dest * b..(dest + 1) * b].to_vec(),
                |src, payload| {
                    bmat[src * b..(src + 1) * b].copy_from_slice(payload);
                    if ft {
                        // Incremental CMCG for the p-point FFT inputs
                        // (Fig 6: "MCV & CMCG" overlapped with Tran1).
                        let w1 = ra_p[src];
                        let w2 = w1.scale((src + 1) as f64);
                        slots1.accumulate_row(w1, w2, payload);
                    }
                },
            );
            rep.merge(&r);
        }

        // Memory window on the assembled FFT1 input.
        injector.inject(ctx, Site::InputMemory, &mut bmat);

        // ---- FFT1: n/p p-point FFTs (stride n/p) ------------------------
        if !ft {
            // Unprotected path: the b stride-b column transforms are one
            // batched call — transpose the p×b block matrix so each
            // p-point input is contiguous, run the batch against a single
            // scratch, transpose back. Same transform values as the
            // per-column gather/FFT/scatter loop of the FT path, but two
            // linear passes replace b strided gather/scatter pairs.
            let mut cols = vec![Complex64::ZERO; n];
            ftfft_fft::strided::transpose_out_of_place(&bmat, &mut cols, p, b);
            let mut fft_scratch = vec![Complex64::ZERO; self.fft_p.scratch_len()];
            self.fft_p.execute_batch_inplace(&mut cols, &mut fft_scratch);
            ftfft_fft::strided::transpose_out_of_place(&cols, &mut bmat, b, p);
        } else {
            let mut buf = vec![Complex64::ZERO; p];
            let mut backup = vec![Complex64::ZERO; p];
            let mut fft_scratch = vec![Complex64::ZERO; self.fft_p.scratch_len()];
            for t in 0..b {
                ftfft_fft::strided::gather(&bmat, t, b, &mut backup);
                let stored = slots1.column_checksum(t);
                let mut attempts = 0u32;
                let mut mem_fixed = false;
                let mut saw_error = false;
                loop {
                    buf.copy_from_slice(&backup);
                    self.fft_p.execute_inplace(&mut buf, &mut fft_scratch);
                    injector.inject(
                        ctx,
                        Site::SubFftCompute { part: Part::First, index: t },
                        &mut buf,
                    );
                    rep.checks += 1;
                    let o = ccv(&buf, stored.sum1, self.eta_fft1);
                    if o.ok {
                        rep.note_ok_residual_part1(o.residual);
                        if saw_error && !mem_fixed {
                            rep.comp_detected += 1;
                        }
                        break;
                    }
                    saw_error = true;
                    attempts += 1;
                    if attempts == 1 {
                        rep.subfft_recomputed += 1;
                        continue;
                    }
                    {
                        rep.checks += 1;
                        let observed = combined_checksum(&backup, &self.ra_p);
                        match combined_decode(observed, stored, &self.ra_p, p, self.eta_fft1) {
                            MemVerdict::Located { index, delta } => {
                                if !mem_fixed {
                                    rep.mem_detected += 1;
                                }
                                rep.mem_corrected += 1;
                                mem_fixed = true;
                                bmat[t + index * b] -= delta;
                                ftfft_fft::strided::gather(&bmat, t, b, &mut backup);
                                rep.subfft_recomputed += 1;
                                if attempts > self.max_retries {
                                    rep.uncorrectable += 1;
                                    break;
                                }
                                continue;
                            }
                            MemVerdict::Unlocatable => {
                                if !mem_fixed {
                                    rep.mem_detected += 1;
                                }
                            }
                            MemVerdict::Clean => {}
                        }
                    }
                    rep.subfft_recomputed += 1;
                    if attempts > self.max_retries {
                        rep.uncorrectable += 1;
                        break;
                    }
                }
                ftfft_fft::strided::scatter(&mut bmat, t, b, &buf);
            }
        }

        // ---- Tran2 + twiddle + FFT2 input CMCG ---------------------------
        let p2_chunks = self.inplace.three().chunk_len();
        let mut z = vec![Complex64::ZERO; n];
        let mut in_ck2 = vec![CombinedChecksum::default(); p2_chunks];
        // ω_N^{c·rank}, c walking each received block; incremental with
        // periodic re-anchoring (O(1) trig per 64 elements).
        let step = cis(-2.0 * std::f64::consts::PI * rank as f64 / self.n_total as f64);
        let mut tw_buf = vec![Complex64::ZERO; b];
        let mut dmr_scratch = vec![Complex64::ZERO; b];
        {
            let z = &mut z;
            let in_ck2 = &mut in_ck2;
            let mut tran2_rep = FtReport::new();
            let r = {
                let tran2_rep = &mut tran2_rep;
                exchange(
                    comm,
                    protection(2),
                    self.tol_comm,
                    ov,
                    injector,
                    |dest| bmat[dest * b..(dest + 1) * b].to_vec(),
                    |src, payload| {
                        // Twiddle weights for global columns c = src·b + u.
                        let c0 = src * b;
                        const RESYNC: usize = 64;
                        let mut u = 0usize;
                        while u < b {
                            let anchor = cis(-2.0
                                * std::f64::consts::PI
                                * ((c0 + u) as u128 * rank as u128 % self.n_total as u128) as f64
                                / self.n_total as f64);
                            let mut w = anchor;
                            let blocklen = RESYNC.min(b - u);
                            for v in tw_buf[u..u + blocklen].iter_mut() {
                                *v = w;
                                w *= step;
                            }
                            u += blocklen;
                        }
                        if ft {
                            ftfft_core::dmr::dmr_twiddle(
                                payload,
                                |j| tw_buf[j],
                                injector,
                                ctx,
                                tran2_rep,
                                &mut dmr_scratch,
                            );
                            // CMCG for FFT2's layer-A sub-FFTs.
                            for (u, &v) in payload.iter().enumerate() {
                                let g = c0 + u;
                                let p1 = g % p2_chunks;
                                let t2 = g / p2_chunks;
                                let w = self.ra_k2[t2];
                                let term = v * w;
                                in_ck2[p1].sum1 += term;
                                in_ck2[p1].sum2 += term.scale((t2 + 1) as f64);
                            }
                        } else {
                            for (v, &w) in payload.iter_mut().zip(tw_buf.iter()) {
                                *v *= w;
                            }
                        }
                        z[src * b..(src + 1) * b].copy_from_slice(payload);
                    },
                )
            };
            rep.merge(&r);
            rep.merge(&tran2_rep);
        }

        // ---- FFT2: local n-point in-place transform ----------------------
        let out_pair = if ft {
            let mut ws = self.inplace.make_workspace();
            let (r, pair) = self.inplace.execute(&mut z, injector, &mut ws, rank, Some(&in_ck2));
            rep.merge(&r);
            // Postponed MCV of the whole FFT2 output before it is scattered
            // (repairs e.g. the OutputMemory window inside execute).
            rep.checks += 1;
            let observed = mem_checksum(&z);
            match decode(observed, pair, n, self.tol_comm) {
                MemVerdict::Clean => {}
                MemVerdict::Located { index, delta } => {
                    rep.mem_detected += 1;
                    rep.mem_corrected += 1;
                    z[index] -= delta;
                }
                MemVerdict::Unlocatable => {
                    rep.mem_detected += 1;
                    rep.uncorrectable += 1;
                }
            }
            Some(pair)
        } else {
            let mut s = self.three.make_scratch();
            self.three.execute_inplace(&mut z, &mut s);
            None
        };
        let _ = out_pair;

        // ---- Tran3 + local interleave ------------------------------------
        let mut out = vec![Complex64::ZERO; n];
        {
            let out = &mut out;
            let r = exchange(
                comm,
                protection(3),
                self.tol_comm,
                ov,
                injector,
                |dest| z[dest * b..(dest + 1) * b].to_vec(),
                |src, payload| {
                    for (u, &v) in payload.iter().enumerate() {
                        out[u * p + src] = v;
                    }
                },
            );
            rep.merge(&r);
        }

        drop(x);
        (out, rep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftfft_fault::{FaultKind, NoFaults, ScriptedFault, ScriptedInjector};
    use ftfft_fft::dft_naive;
    use ftfft_numeric::{max_abs_diff, uniform_signal};

    fn check_scheme(n: usize, p: usize, scheme: ParallelScheme) {
        let plan = ParallelFft::new(n, p, scheme, None, (1.0f64 / 3.0).sqrt(), 3);
        let x = uniform_signal(n, 99);
        let want = dft_naive(&x, Direction::Forward);
        let (got, rep) = plan.run(&x, &NoFaults);
        assert!(
            max_abs_diff(&got, &want) < 1e-8 * n as f64,
            "{scheme:?} n={n} p={p}: err {}",
            max_abs_diff(&got, &want)
        );
        assert!(rep.is_clean(), "{scheme:?}: {rep:?}");
    }

    #[test]
    fn all_schemes_match_dft() {
        for scheme in ParallelScheme::ALL {
            check_scheme(1 << 10, 4, scheme);
        }
    }

    #[test]
    fn various_rank_counts() {
        for p in [1usize, 2, 4, 8] {
            check_scheme(1 << 12, p, ParallelScheme::OptFtFftw);
        }
    }

    #[test]
    fn non_power_of_two_ranks() {
        check_scheme(3 * 3 * 256, 3, ParallelScheme::OptFtFftw);
    }

    #[test]
    fn comm_fault_repaired() {
        let n = 1 << 10;
        let p = 4;
        let plan = ParallelFft::new(n, p, ParallelScheme::FtFftw, None, (1.0f64 / 3.0).sqrt(), 3);
        let x = uniform_signal(n, 99);
        let want = dft_naive(&x, Direction::Forward);
        let inj = ScriptedInjector::new(vec![ScriptedFault::new(
            Site::CommBlock { from: 0, to: 2, phase: 2 },
            10,
            FaultKind::AddDelta { re: 3.0, im: -1.0 },
        )]);
        let (got, rep) = plan.run(&x, &inj);
        assert_eq!(rep.comm_corrected, 1, "{rep:?}");
        assert!(max_abs_diff(&got, &want) < 1e-8 * n as f64);
    }

    #[test]
    fn fft1_compute_fault_recovered() {
        let n = 1 << 10;
        let p = 4;
        let plan =
            ParallelFft::new(n, p, ParallelScheme::OptFtFftw, None, (1.0f64 / 3.0).sqrt(), 3);
        let x = uniform_signal(n, 99);
        let want = dft_naive(&x, Direction::Forward);
        let inj = ScriptedInjector::new(vec![ScriptedFault::new(
            Site::SubFftCompute { part: Part::First, index: 5 },
            1,
            FaultKind::AddDelta { re: 1e-2, im: 0.0 },
        )
        .on_rank(2)]);
        let (got, rep) = plan.run(&x, &inj);
        assert!(rep.comp_detected >= 1, "{rep:?}");
        assert!(rep.subfft_recomputed >= 1);
        assert!(max_abs_diff(&got, &want) < 1e-8 * n as f64);
    }

    #[test]
    fn fft1_input_memory_fault_located() {
        let n = 1 << 12;
        let p = 4;
        let plan = ParallelFft::new(n, p, ParallelScheme::FtFftw, None, (1.0f64 / 3.0).sqrt(), 3);
        let x = uniform_signal(n, 99);
        let want = dft_naive(&x, Direction::Forward);
        let inj = ScriptedInjector::new(vec![ScriptedFault::new(
            Site::InputMemory,
            123,
            FaultKind::SetValue { re: 5.0, im: 5.0 },
        )
        .on_rank(1)]);
        let (got, rep) = plan.run(&x, &inj);
        assert_eq!(rep.mem_detected, 1, "{rep:?}");
        assert_eq!(rep.mem_corrected, 1);
        assert!(max_abs_diff(&got, &want) < 1e-8 * n as f64);
    }

    #[test]
    fn faults_on_every_rank_all_recovered() {
        // Table 2/3 scenario: 2 memory + 2 computational faults per rank.
        let n = 1 << 12;
        let p = 4;
        let plan =
            ParallelFft::new(n, p, ParallelScheme::OptFtFftw, None, (1.0f64 / 3.0).sqrt(), 3);
        let x = uniform_signal(n, 99);
        let want = dft_naive(&x, Direction::Forward);
        let mut faults = Vec::new();
        for r in 0..p {
            faults.push(
                ScriptedFault::new(
                    Site::InputMemory,
                    7 + r,
                    FaultKind::SetValue { re: 2.0, im: 2.0 },
                )
                .on_rank(r),
            );
            faults.push(
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::First, index: 2 },
                    3,
                    FaultKind::AddDelta { re: 1e-2, im: 0.0 },
                )
                .on_rank(r),
            );
            faults.push(
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::Second, index: 1 },
                    2,
                    FaultKind::AddDelta { re: 0.0, im: 1e-2 },
                )
                .on_rank(r),
            );
            faults.push(
                ScriptedFault::new(
                    Site::IntermediateMemory,
                    50 + r,
                    FaultKind::AddDelta { re: 1.0, im: -1.0 },
                )
                .on_rank(r),
            );
        }
        let inj = ScriptedInjector::new(faults);
        let (got, rep) = plan.run(&x, &inj);
        assert_eq!(rep.uncorrectable, 0, "{rep:?}");
        assert!(rep.mem_corrected >= 2 * p as u32 - 1, "{rep:?}");
        assert!(max_abs_diff(&got, &want) < 1e-8 * n as f64);
    }
}

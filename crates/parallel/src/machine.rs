//! Simulated message-passing machine: one OS thread per rank, a full mesh
//! of channels, nonblocking send/receive in the MPI style the paper's
//! Algorithm 3 assumes (`Isend`/`Irecv`/`Wait`), and a shared barrier.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use ftfft_numeric::Complex64;

use crate::network::NetworkModel;

/// A message between ranks: payload plus its send timestamp (for the
/// network model).
struct Msg {
    data: Vec<Complex64>,
    sent: Instant,
}

/// Per-rank communication endpoint.
pub struct Comm {
    rank: usize,
    p: usize,
    senders: Vec<Sender<Msg>>,
    receivers: Vec<Receiver<Msg>>,
    barrier: Arc<Barrier>,
    network: Option<NetworkModel>,
}

/// Handle for a posted nonblocking receive.
pub struct RecvHandle<'a> {
    comm: &'a Comm,
    from: usize,
}

impl Comm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Nonblocking send (unbounded channel: never blocks) — `Isend` whose
    /// completion is immediate.
    pub fn isend(&self, to: usize, data: Vec<Complex64>) {
        self.senders[to].send(Msg { data, sent: Instant::now() }).expect("peer rank hung up");
    }

    /// Posts a nonblocking receive from `from`.
    pub fn irecv(&self, from: usize) -> RecvHandle<'_> {
        RecvHandle { comm: self, from }
    }

    /// Blocking receive from `from`, honouring the network model.
    pub fn recv(&self, from: usize) -> Vec<Complex64> {
        let msg = self.receivers[from].recv().expect("peer rank hung up");
        if let Some(net) = self.network {
            NetworkModel::wait_until(net.arrival(msg.sent, msg.data.len()));
        }
        msg.data
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

impl RecvHandle<'_> {
    /// Waits for the message (`MPI_Wait`).
    pub fn wait(self) -> Vec<Complex64> {
        self.comm.recv(self.from)
    }
}

/// Runs `f` on `p` ranks (threads) and collects the per-rank results in
/// rank order. `f` may borrow from the caller's stack (scoped threads).
pub fn run_ranks<T, F>(p: usize, network: Option<NetworkModel>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Sync,
{
    assert!(p > 0);
    // Build the full channel mesh: mesh[i][j] carries i → j traffic.
    let mut senders: Vec<Vec<Sender<Msg>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut receivers: Vec<Vec<Receiver<Msg>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    for sender_row in &mut senders {
        for receiver_row in &mut receivers {
            let (tx, rx) = unbounded();
            sender_row.push(tx);
            receiver_row.push(rx);
        }
    }
    // receivers[j][i] must be indexed by source i. It already is: the
    // outer loop walks sources in ascending order, so each receiver row j
    // gets exactly one push per source, in source order.
    let barrier = Arc::new(Barrier::new(p));

    let mut comms: Vec<Option<Comm>> = Vec::with_capacity(p);
    let mut receivers_iter = receivers.into_iter();
    for (rank, s) in senders.into_iter().enumerate() {
        let r = receivers_iter.next().expect("mesh size mismatch");
        comms.push(Some(Comm {
            rank,
            p,
            senders: s,
            receivers: r,
            barrier: barrier.clone(),
            network,
        }));
    }

    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .iter_mut()
            .map(|slot| {
                let comm = slot.take().expect("comm already taken");
                let f = &f;
                scope.spawn(move || f(comm))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftfft_numeric::complex::c64;

    #[test]
    fn ring_pass() {
        let results = run_ranks(4, None, |comm| {
            let me = comm.rank();
            let next = (me + 1) % comm.size();
            let prev = (me + comm.size() - 1) % comm.size();
            comm.isend(next, vec![c64(me as f64, 0.0)]);
            let got = comm.recv(prev);
            got[0].re as usize
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn irecv_wait_matches_blocking() {
        let results = run_ranks(2, None, |comm| {
            let other = 1 - comm.rank();
            let h = comm.irecv(other);
            comm.isend(other, vec![c64(42.0, -1.0); 8]);
            let data = h.wait();
            data.len()
        });
        assert_eq!(results, vec![8, 8]);
    }

    #[test]
    fn messages_are_fifo_per_pair() {
        let results = run_ranks(2, None, |comm| {
            if comm.rank() == 0 {
                for i in 0..10 {
                    comm.isend(1, vec![c64(i as f64, 0.0)]);
                }
                0
            } else {
                let mut last = -1.0;
                for _ in 0..10 {
                    let m = comm.recv(0);
                    assert!(m[0].re > last);
                    last = m[0].re;
                }
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn network_model_delays_delivery() {
        use std::time::{Duration, Instant};
        let net = NetworkModel { latency: Duration::from_millis(3), per_word: Duration::ZERO };
        run_ranks(2, Some(net), |comm| {
            // Synchronize so thread start-up skew doesn't eat the latency.
            comm.barrier();
            if comm.rank() == 0 {
                comm.isend(1, vec![c64(1.0, 0.0)]);
            } else {
                let t0 = Instant::now();
                let _ = comm.recv(0);
                assert!(t0.elapsed() >= Duration::from_millis(1));
            }
        });
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks(4, None, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }
}

//! Pooled (multi-threaded) protected executors.
//!
//! [`PooledFtFft`] wraps an [`FtFftPlan`] and uses the persistent
//! [`ThreadPool`] to exploit the independence the online scheme already
//! has:
//!
//! * **Part 1 across workers** — the `k` first-part m-point sub-FFTs of
//!   the computational online schemes (`OnlineComp`/`OnlineCompOpt`) only
//!   *read* the shared input and write disjoint rows of the intermediate
//!   matrix, so [`execute`](PooledFtFft::execute) fans them out with one
//!   workspace per worker and runs part 2 (whose slot order matters)
//!   serially. Outputs are **bitwise identical** to the single-threaded
//!   executor, and so is the [`FtReport`] (counts are sums, residual
//!   maxima are maxima — both order-free).
//! * **Batch items across workers** —
//!   [`execute_batch`](PooledFtFft::execute_batch) runs whole independent
//!   transforms of a batch concurrently under any scheme.
//!
//! Fault-injection determinism: sites that carry their own index
//! (`SubFftCompute { index, .. }`) are visited in a deterministic per-row
//! order, so scripted faults strike identically however rows are scheduled
//! across workers. Sites shared between rows (`TwiddleDmrPass`) or between
//! batch items (`InputMemory`, …) have *global occurrence counters*: under
//! threading, which row/item a given occurrence lands on depends on
//! scheduling, though every scripted fault still fires exactly once and
//! the merged report totals are unchanged.

use ftfft_core::dmr::dmr_generate_ra_into;
use ftfft_core::online::{part1_row, part2_col};
use ftfft_core::{FtFftPlan, FtReport, Scheme, Workspace};
use ftfft_fault::{FaultInjector, InjectionCtx, Site};
use ftfft_numeric::Complex64;
use parking_lot::Mutex;

use crate::pool::{chunk_range, resolve_threads, ThreadPool};

/// A protected FFT plan bound to a persistent worker pool.
///
/// Worker count: `FtConfig::threads` if set, else the `FTFFT_THREADS`
/// environment variable, else the machine's available parallelism
/// (see [`resolve_threads`]).
pub struct PooledFtFft {
    plan: FtFftPlan,
    pool: ThreadPool,
}

/// Per-worker scratch for the part-1 fan-out — just the three lane-sized
/// buffers [`part1_row`] touches, not a full (n-sized) [`Workspace`].
pub struct LaneScratch {
    /// Gather/result buffer (`max(k, m)` long).
    pub buf: Vec<Complex64>,
    /// DMR scratch (`max(k, m)` long).
    pub buf2: Vec<Complex64>,
    /// Sub-plan FFT scratch.
    pub fft: Vec<Complex64>,
}

/// Workspaces for [`PooledFtFft::execute`]: the main (serial-phase)
/// workspace plus lane-sized scratch per worker. The batched executor
/// needs full per-worker workspaces instead — see
/// [`PooledFtFft::make_batch_workspace`].
pub struct PooledWorkspace {
    /// Workspace for the serial phases (and the single-threaded fallback).
    pub main: Workspace,
    /// Per-worker lane scratch, indexed by pool worker id.
    pub lanes: Vec<LaneScratch>,
}

impl PooledFtFft {
    /// Wraps `plan`, spawning the plan's worker pool.
    pub fn new(plan: FtFftPlan) -> Self {
        let pool = ThreadPool::new(resolve_threads(plan.cfg().threads));
        PooledFtFft { plan, pool }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FtFftPlan {
        &self.plan
    }

    /// Worker count in force (including the calling thread).
    pub fn threads(&self) -> usize {
        self.pool.size()
    }

    /// Allocates the workspace for [`execute`](Self::execute): one full
    /// main workspace plus lane-sized scratch per worker (workers never
    /// need the n-sized buffers).
    pub fn make_workspace(&self) -> PooledWorkspace {
        let two = self.plan.two();
        let lane = two.k().max(two.m());
        let fft_len = two.inner_plan().scratch_len().max(two.outer_plan().scratch_len());
        PooledWorkspace {
            main: self.plan.make_workspace(),
            lanes: (0..self.pool.size())
                .map(|_| LaneScratch {
                    buf: vec![Complex64::ZERO; lane],
                    buf2: vec![Complex64::ZERO; lane],
                    fft: vec![Complex64::ZERO; fft_len],
                })
                .collect(),
        }
    }

    /// Allocates one full workspace per worker for
    /// [`execute_batch`](Self::execute_batch), where every worker runs
    /// whole transforms.
    pub fn make_batch_workspace(&self) -> Vec<Workspace> {
        (0..self.pool.size()).map(|_| self.plan.make_workspace()).collect()
    }

    /// Executes the protected transform with part 1 fanned across the
    /// pool. Supported for the computational online schemes
    /// (`OnlineComp`, `OnlineCompOpt`), whose part 1 never mutates shared
    /// state; every other scheme (and a pool of size 1) falls back to the
    /// serial [`FtFftPlan::execute`].
    pub fn execute(
        &self,
        x: &mut [Complex64],
        out: &mut [Complex64],
        injector: &dyn FaultInjector,
        ws: &mut PooledWorkspace,
    ) -> FtReport {
        let plan = &self.plan;
        let optimized = match plan.cfg().scheme {
            Scheme::OnlineCompOpt => true,
            Scheme::OnlineComp => false,
            _ => return plan.execute(x, out, injector, &mut ws.main),
        };
        if self.pool.size() == 1 {
            return plan.execute(x, out, injector, &mut ws.main);
        }
        assert_eq!(x.len(), plan.n(), "input length mismatch");
        assert_eq!(out.len(), plan.n(), "output length mismatch");

        let ctx = InjectionCtx::default();
        let mut rep = FtReport::new();
        let two = plan.two();
        let (k, m) = (two.k(), two.m());

        dmr_generate_ra_into(
            m,
            plan.dir(),
            false,
            injector,
            ctx,
            &mut rep,
            &mut ws.main.ra_m,
            &mut ws.main.ra_tmp,
        );
        dmr_generate_ra_into(
            k,
            plan.dir(),
            false,
            injector,
            ctx,
            &mut rep,
            &mut ws.main.ra_k,
            &mut ws.main.ra_tmp,
        );

        injector.inject(ctx, Site::InputMemory, x);

        // ---- part 1: k m-point FFTs across the pool ---------------------
        {
            let t = self.pool.size().min(k).max(1);
            let ra_m = &ws.main.ra_m[..m];
            let x_shared: &[Complex64] = x;
            // Pre-split the intermediate matrix into each worker's rows
            // (the same contiguous chunks run_chunks hands out).
            let mut slots = Vec::with_capacity(t);
            let mut rest = &mut ws.main.y[..k * m];
            for (w, lane) in ws.lanes.iter_mut().take(t).enumerate() {
                let rows = chunk_range(k, t, w);
                let (chunk, tail) = rest.split_at_mut(rows.len() * m);
                rest = tail;
                slots.push(Mutex::new((chunk, lane, FtReport::new())));
            }
            self.pool.run_chunks(k, |w, rows| {
                let mut slot = slots[w].lock();
                let (y_rows, lane, local_rep) = &mut *slot;
                for n1 in rows.clone() {
                    part1_row(
                        plan,
                        x_shared,
                        ra_m,
                        n1,
                        optimized,
                        &mut lane.buf,
                        &mut lane.buf2,
                        &mut lane.fft,
                        injector,
                        ctx,
                        local_rep,
                    );
                    let off = (n1 - rows.start) * m;
                    y_rows[off..off + m].copy_from_slice(&lane.buf[..m]);
                }
            });
            for slot in slots {
                rep.merge(&slot.into_inner().2);
            }
        }

        injector.inject(ctx, Site::IntermediateMemory, &mut ws.main.y);

        // ---- part 2: m k-point FFTs, serial (slot order matters) --------
        for j2 in 0..m {
            part2_col(
                plan,
                &ws.main.y,
                &ws.main.ra_k[..k],
                j2,
                optimized,
                &mut ws.main.buf,
                &mut ws.main.buf2,
                &mut ws.main.fft,
                injector,
                ctx,
                &mut rep,
            );
            two.scatter_output(out, j2, &ws.main.buf);
        }

        injector.inject(ctx, Site::OutputMemory, out);
        rep
    }

    /// Batched protected transform with whole batch items fanned across
    /// the pool — any scheme. `xs`/`outs` hold `xs.len() / n` back-to-back
    /// signals; each worker transforms its contiguous chunk of items
    /// against its own workspace from `workers` (allocate with
    /// [`make_batch_workspace`](Self::make_batch_workspace)). Returns the
    /// merged report (worker order), identical in totals to the serial
    /// [`FtFftPlan::execute_batch`].
    ///
    /// # Panics
    /// Panics if `xs.len() != outs.len()`, the length is not a multiple
    /// of the plan size, or `workers` has fewer workspaces than the pool
    /// has workers.
    pub fn execute_batch(
        &self,
        xs: &mut [Complex64],
        outs: &mut [Complex64],
        injector: &dyn FaultInjector,
        workers: &mut [Workspace],
    ) -> FtReport {
        let plan = &self.plan;
        let n = plan.n();
        assert_eq!(xs.len(), outs.len(), "batch input/output length mismatch");
        assert!(
            xs.len().is_multiple_of(n),
            "batch length {} is not a multiple of plan size {n}",
            xs.len()
        );
        let items = xs.len() / n;
        let t = self.pool.size().min(items).max(1);
        assert!(workers.len() >= t, "need {t} worker workspaces, got {}", workers.len());
        if t == 1 {
            return plan.execute_batch(xs, outs, injector, &mut workers[0]);
        }

        let mut slots = Vec::with_capacity(t);
        let mut xs_rest = &mut xs[..];
        let mut outs_rest = &mut outs[..];
        for (w, wws) in workers.iter_mut().take(t).enumerate() {
            let chunk_items = chunk_range(items, t, w).len();
            let (x_chunk, x_tail) = xs_rest.split_at_mut(chunk_items * n);
            let (o_chunk, o_tail) = outs_rest.split_at_mut(chunk_items * n);
            xs_rest = x_tail;
            outs_rest = o_tail;
            slots.push(Mutex::new((x_chunk, o_chunk, wws, FtReport::new())));
        }
        self.pool.run_chunks(items, |w, _range| {
            let mut slot = slots[w].lock();
            let (x_chunk, o_chunk, wws, local_rep) = &mut *slot;
            for (x, out) in x_chunk.chunks_exact_mut(n).zip(o_chunk.chunks_exact_mut(n)) {
                local_rep.merge(&plan.execute(x, out, injector, wws));
            }
        });
        let mut rep = FtReport::new();
        for slot in slots {
            rep.merge(&slot.into_inner().3);
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftfft_core::FtConfig;
    use ftfft_fault::{FaultKind, NoFaults, Part, ScriptedFault, ScriptedInjector};
    use ftfft_fft::Direction;
    use ftfft_numeric::uniform_signal;

    fn serial_run(scheme: Scheme, n: usize, inj: &dyn FaultInjector) -> (Vec<Complex64>, FtReport) {
        let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(scheme));
        let mut x = uniform_signal(n, 5);
        let mut out = vec![Complex64::ZERO; n];
        let mut ws = plan.make_workspace();
        let rep = plan.execute(&mut x, &mut out, inj, &mut ws);
        (out, rep)
    }

    fn pooled_run(
        scheme: Scheme,
        n: usize,
        threads: usize,
        inj: &dyn FaultInjector,
    ) -> (Vec<Complex64>, FtReport) {
        let plan =
            FtFftPlan::new(n, Direction::Forward, FtConfig::new(scheme).with_threads(threads));
        let pooled = PooledFtFft::new(plan);
        assert_eq!(pooled.threads(), threads);
        let mut x = uniform_signal(n, 5);
        let mut out = vec![Complex64::ZERO; n];
        let mut ws = pooled.make_workspace();
        let rep = pooled.execute(&mut x, &mut out, inj, &mut ws);
        (out, rep)
    }

    #[test]
    fn pooled_matches_serial_bitwise_clean() {
        for scheme in [Scheme::OnlineComp, Scheme::OnlineCompOpt] {
            for threads in [1usize, 2, 3, 7] {
                let (want, want_rep) = serial_run(scheme, 1 << 10, &NoFaults);
                let (got, got_rep) = pooled_run(scheme, 1 << 10, threads, &NoFaults);
                assert_eq!(got, want, "{scheme:?} threads={threads}");
                assert_eq!(got_rep, want_rep, "{scheme:?} threads={threads}");
            }
        }
    }

    #[test]
    fn pooled_part1_faults_detected_identically() {
        // Per-index sites strike the same row at any worker count.
        let faults = || {
            vec![
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::First, index: 3 },
                    7,
                    FaultKind::AddDelta { re: 1e-3, im: 0.0 },
                ),
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::First, index: 30 },
                    1,
                    FaultKind::AddDelta { re: 0.0, im: -2.0 },
                ),
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::Second, index: 5 },
                    2,
                    FaultKind::AddDelta { re: 2.0, im: 2.0 },
                ),
            ]
        };
        let serial_inj = ScriptedInjector::new(faults());
        let (want, want_rep) = serial_run(Scheme::OnlineCompOpt, 1 << 10, &serial_inj);
        for threads in [2usize, 4] {
            let inj = ScriptedInjector::new(faults());
            let (got, got_rep) = pooled_run(Scheme::OnlineCompOpt, 1 << 10, threads, &inj);
            assert!(inj.exhausted(), "threads={threads}");
            assert_eq!(got_rep, want_rep, "threads={threads}");
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn non_comp_schemes_fall_back_to_serial() {
        let (want, want_rep) = serial_run(Scheme::OnlineMemOpt, 1 << 9, &NoFaults);
        let (got, got_rep) = pooled_run(Scheme::OnlineMemOpt, 1 << 9, 4, &NoFaults);
        assert_eq!(got, want);
        assert_eq!(got_rep, want_rep);
    }

    #[test]
    fn pooled_batch_matches_serial_clean() {
        let n = 1 << 8;
        let batch = 5;
        let src = uniform_signal(n * batch, 9);
        let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
        let mut ws = plan.make_workspace();
        let mut xs = src.clone();
        let mut want = vec![Complex64::ZERO; n * batch];
        let want_rep = plan.execute_batch(&mut xs, &mut want, &NoFaults, &mut ws);

        for threads in [2usize, 3, 8] {
            let plan = FtFftPlan::new(
                n,
                Direction::Forward,
                FtConfig::new(Scheme::OnlineMemOpt).with_threads(threads),
            );
            let pooled = PooledFtFft::new(plan);
            let mut pws = pooled.make_batch_workspace();
            let mut xs = src.clone();
            let mut got = vec![Complex64::ZERO; n * batch];
            let got_rep = pooled.execute_batch(&mut xs, &mut got, &NoFaults, &mut pws);
            assert_eq!(got, want, "threads={threads}");
            assert_eq!(got_rep, want_rep, "threads={threads}");
        }
    }

    #[test]
    fn pooled_batch_corrects_faults_with_identical_totals() {
        let n = 1 << 8;
        let batch = 4;
        let src = uniform_signal(n * batch, 11);
        let faults = || {
            vec![ScriptedFault::new(
                Site::SubFftCompute { part: Part::First, index: 2 },
                3,
                FaultKind::AddDelta { re: 5e-2, im: 0.0 },
            )]
        };
        let plan = FtFftPlan::new(
            n,
            Direction::Forward,
            FtConfig::new(Scheme::OnlineMemOpt).with_threads(3),
        );
        let pooled = PooledFtFft::new(plan);
        let mut pws = pooled.make_batch_workspace();
        let mut xs = src.clone();
        let mut got = vec![Complex64::ZERO; n * batch];
        let inj = ScriptedInjector::new(faults());
        let rep = pooled.execute_batch(&mut xs, &mut got, &inj, &mut pws);
        assert!(inj.exhausted());
        assert_eq!(rep.comp_detected, 1, "{rep:?}");
        assert_eq!(rep.uncorrectable, 0);
        // Every item matches the clean transform — whichever item took the
        // fault, it was corrected.
        for (x, out) in src.chunks_exact(n).zip(got.chunks_exact(n)) {
            let want = ftfft_fft::fft(x);
            let err = ftfft_numeric::max_abs_diff(out, &want);
            assert!(err < 1e-8 * n as f64, "err={err}");
        }
    }
}

//! Pooled (multi-threaded) protected executors.
//!
//! [`PooledFtFft`] wraps an [`FtFftPlan`] and uses the persistent
//! [`ThreadPool`] to exploit the independence the online scheme already
//! has:
//!
//! * **Part 1 across workers** — the `k` first-part m-point sub-FFTs of
//!   the computational online schemes (`OnlineComp`/`OnlineCompOpt`) only
//!   *read* the shared input and write disjoint rows of the intermediate
//!   matrix, so [`execute`](PooledFtFft::execute) fans them out with one
//!   lane of scratch per worker.
//! * **Part 2 across workers** — the `m` second-part k-point columns are
//!   equally independent: each reads the shared intermediate matrix and
//!   finishes one column. Workers land their columns in a staging buffer
//!   (disjoint contiguous chunks, pre-split like part 1's rows) and a
//!   serial pass scatters them into the caller's output in natural column
//!   order, so the strided output writes never cross threads. Outputs are
//!   **bitwise identical** to the single-threaded executor at any worker
//!   count, and so is the [`FtReport`] (counts are sums, residual maxima
//!   are maxima — both order-free).
//! * **Batch items across workers** —
//!   [`execute_batch`](PooledFtFft::execute_batch) runs whole independent
//!   transforms of a batch concurrently under any scheme.
//!
//! Fault-injection determinism: sites that carry their own index
//! (`SubFftCompute { index, .. }`) are visited in a deterministic per-row
//! (per-column) order, so scripted faults strike identically however rows
//! and columns are scheduled across workers. Sites shared between rows or
//! columns (`TwiddleDmrPass` — which the *unoptimized* scheme also visits
//! once per part-2 column) or between batch items (`InputMemory`, …) have
//! *global occurrence counters*: under threading, which row/column/item a
//! given occurrence lands on depends on scheduling, though every scripted
//! fault still fires exactly once and the merged report totals are
//! unchanged.

use ftfft_core::dmr::dmr_generate_ra_into;
use ftfft_core::online::{part1_row, part2_col};
use ftfft_core::{FtFftPlan, FtReport, Scheme, Workspace};
use ftfft_fault::{FaultInjector, InjectionCtx, Site};
use ftfft_numeric::Complex64;
use parking_lot::Mutex;

use crate::pool::{chunk_range, resolve_threads, ThreadPool};

/// A protected FFT plan bound to a persistent worker pool.
///
/// Worker count: `FtConfig::threads` if set, else the `FTFFT_THREADS`
/// environment variable, else the machine's available parallelism
/// (see [`resolve_threads`]).
pub struct PooledFtFft {
    plan: FtFftPlan,
    pool: ThreadPool,
    obs_part1: std::sync::Arc<ftfft_obs::Histogram>,
    obs_part2: std::sync::Arc<ftfft_obs::Histogram>,
}

/// Per-worker scratch for the part-1 fan-out — just the three lane-sized
/// buffers [`part1_row`] touches, not a full (n-sized) [`Workspace`].
pub struct LaneScratch {
    /// Gather/result buffer (`max(k, m)` long).
    pub buf: Vec<Complex64>,
    /// DMR scratch (`max(k, m)` long).
    pub buf2: Vec<Complex64>,
    /// Sub-plan FFT scratch.
    pub fft: Vec<Complex64>,
}

/// Workspaces for [`PooledFtFft::execute`]: the main (serial-phase)
/// workspace plus lane-sized scratch per worker. The batched executor
/// needs full per-worker workspaces instead — see
/// [`PooledFtFft::make_batch_workspace`].
pub struct PooledWorkspace {
    /// Workspace for the serial phases (and the single-threaded fallback).
    pub main: Workspace,
    /// Per-worker lane scratch, indexed by pool worker id.
    pub lanes: Vec<LaneScratch>,
    /// Column staging for the part-2 fan-out (`k·m = n` elements): worker
    /// `w` writes its columns back-to-back into its pre-split chunk, and
    /// the serial scatter pass reads column `j2` at `j2·k`.
    pub cols: Vec<Complex64>,
}

impl PooledFtFft {
    /// Wraps `plan`, spawning the plan's worker pool.
    pub fn new(plan: FtFftPlan) -> Self {
        let pool = ThreadPool::new(resolve_threads(plan.cfg().threads));
        let reg = ftfft_obs::global();
        PooledFtFft {
            plan,
            pool,
            obs_part1: reg.histogram("ftfft_parallel_part1_ns"),
            obs_part2: reg.histogram("ftfft_parallel_part2_ns"),
        }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FtFftPlan {
        &self.plan
    }

    /// Worker count in force (including the calling thread).
    pub fn threads(&self) -> usize {
        self.pool.size()
    }

    /// Allocates the workspace for [`execute`](Self::execute): one full
    /// main workspace, lane-sized scratch per worker (workers never need
    /// the n-sized buffers), and the n-sized part-2 column staging.
    pub fn make_workspace(&self) -> PooledWorkspace {
        let two = self.plan.two();
        let lane = two.k().max(two.m());
        let fft_len = two.inner_plan().scratch_len().max(two.outer_plan().scratch_len());
        PooledWorkspace {
            main: self.plan.make_workspace(),
            lanes: (0..self.pool.size())
                .map(|_| LaneScratch {
                    buf: vec![Complex64::ZERO; lane],
                    buf2: vec![Complex64::ZERO; lane],
                    fft: vec![Complex64::ZERO; fft_len],
                })
                .collect(),
            cols: vec![Complex64::ZERO; two.k() * two.m()],
        }
    }

    /// Allocates one full workspace per worker for
    /// [`execute_batch`](Self::execute_batch), where every worker runs
    /// whole transforms.
    pub fn make_batch_workspace(&self) -> Vec<Workspace> {
        (0..self.pool.size()).map(|_| self.plan.make_workspace()).collect()
    }

    /// Executes the protected transform with part 1 (rows) and part 2
    /// (columns) each fanned across the pool. Supported for the
    /// computational online schemes (`OnlineComp`, `OnlineCompOpt`),
    /// whose sub-FFT units never mutate shared state; every other scheme
    /// (and a pool of size 1) falls back to the serial
    /// [`FtFftPlan::execute`]. Output and report are bitwise identical to
    /// the serial executor at any worker count.
    pub fn execute(
        &self,
        x: &mut [Complex64],
        out: &mut [Complex64],
        injector: &dyn FaultInjector,
        ws: &mut PooledWorkspace,
    ) -> FtReport {
        let plan = &self.plan;
        let optimized = match plan.cfg().scheme {
            Scheme::OnlineCompOpt => true,
            Scheme::OnlineComp => false,
            _ => return plan.execute(x, out, injector, &mut ws.main),
        };
        if self.pool.size() == 1 {
            return plan.execute(x, out, injector, &mut ws.main);
        }
        assert_eq!(x.len(), plan.n(), "input length mismatch");
        assert_eq!(out.len(), plan.n(), "output length mismatch");

        let ctx = InjectionCtx::default();
        let mut rep = FtReport::new();
        let two = plan.two();
        let (k, m) = (two.k(), two.m());

        dmr_generate_ra_into(
            m,
            plan.dir(),
            false,
            injector,
            ctx,
            &mut rep,
            &mut ws.main.ra_m,
            &mut ws.main.ra_tmp,
        );
        dmr_generate_ra_into(
            k,
            plan.dir(),
            false,
            injector,
            ctx,
            &mut rep,
            &mut ws.main.ra_k,
            &mut ws.main.ra_tmp,
        );

        injector.inject(ctx, Site::InputMemory, x);

        // ---- part 1: k m-point FFTs across the pool ---------------------
        {
            let timer = ftfft_obs::Timer::start();
            let t = self.pool.size().min(k).max(1);
            let ra_m = &ws.main.ra_m[..m];
            let x_shared: &[Complex64] = x;
            // Pre-split the intermediate matrix into each worker's rows
            // (the same contiguous chunks run_chunks hands out).
            let mut slots = Vec::with_capacity(t);
            let mut rest = &mut ws.main.y[..k * m];
            for (w, lane) in ws.lanes.iter_mut().take(t).enumerate() {
                let rows = chunk_range(k, t, w);
                let (chunk, tail) = rest.split_at_mut(rows.len() * m);
                rest = tail;
                slots.push(Mutex::new((chunk, lane, FtReport::new())));
            }
            self.pool.run_chunks(k, |w, rows| {
                let mut slot = slots[w].lock();
                let (y_rows, lane, local_rep) = &mut *slot;
                for n1 in rows.clone() {
                    part1_row(
                        plan,
                        x_shared,
                        ra_m,
                        n1,
                        optimized,
                        &mut lane.buf,
                        &mut lane.buf2,
                        &mut lane.fft,
                        injector,
                        ctx,
                        local_rep,
                    );
                    let off = (n1 - rows.start) * m;
                    y_rows[off..off + m].copy_from_slice(&lane.buf[..m]);
                }
            });
            for slot in slots {
                rep.merge(&slot.into_inner().2);
            }
            timer.stop(&self.obs_part1);
        }

        injector.inject(ctx, Site::IntermediateMemory, &mut ws.main.y);

        // ---- part 2: m k-point FFTs across the pool ---------------------
        {
            let timer = ftfft_obs::Timer::start();
            let t = self.pool.size().min(m).max(1);
            let ra_k = &ws.main.ra_k[..k];
            let y_shared: &[Complex64] = &ws.main.y[..k * m];
            // Pre-split the column staging into each worker's chunk (the
            // same contiguous column ranges run_chunks hands out).
            let mut slots = Vec::with_capacity(t);
            let mut rest = &mut ws.cols[..k * m];
            for (w, lane) in ws.lanes.iter_mut().take(t).enumerate() {
                let cols = chunk_range(m, t, w);
                let (chunk, tail) = rest.split_at_mut(cols.len() * k);
                rest = tail;
                slots.push(Mutex::new((chunk, lane, FtReport::new())));
            }
            self.pool.run_chunks(m, |w, cols| {
                let mut slot = slots[w].lock();
                let (col_chunk, lane, local_rep) = &mut *slot;
                for j2 in cols.clone() {
                    part2_col(
                        plan,
                        y_shared,
                        ra_k,
                        j2,
                        optimized,
                        &mut lane.buf,
                        &mut lane.buf2,
                        &mut lane.fft,
                        injector,
                        ctx,
                        local_rep,
                    );
                    let off = (j2 - cols.start) * k;
                    col_chunk[off..off + k].copy_from_slice(&lane.buf[..k]);
                }
            });
            for slot in slots {
                rep.merge(&slot.into_inner().2);
            }
            timer.stop(&self.obs_part2);
        }

        // Serial scatter: column j2 lands on the strided output positions
        // in natural order, so the interleaved writes stay on one thread.
        for (j2, col) in ws.cols[..k * m].chunks_exact(k).enumerate() {
            two.scatter_output(out, j2, col);
        }

        injector.inject(ctx, Site::OutputMemory, out);
        rep
    }

    /// Batched protected transform with whole batch items fanned across
    /// the pool — any scheme. `xs`/`outs` hold `xs.len() / n` back-to-back
    /// signals; each worker transforms its contiguous chunk of items
    /// against its own workspace from `workers` (allocate with
    /// [`make_batch_workspace`](Self::make_batch_workspace)). Returns the
    /// merged report (worker order), identical in totals to the serial
    /// [`FtFftPlan::execute_batch`].
    ///
    /// # Panics
    /// Panics if `xs.len() != outs.len()`, the length is not a multiple
    /// of the plan size, or `workers` has fewer workspaces than the pool
    /// has workers.
    pub fn execute_batch(
        &self,
        xs: &mut [Complex64],
        outs: &mut [Complex64],
        injector: &dyn FaultInjector,
        workers: &mut [Workspace],
    ) -> FtReport {
        let plan = &self.plan;
        let n = plan.n();
        assert_eq!(xs.len(), outs.len(), "batch input/output length mismatch");
        assert!(
            xs.len().is_multiple_of(n),
            "batch length {} is not a multiple of plan size {n}",
            xs.len()
        );
        let items = xs.len() / n;
        let t = self.pool.size().min(items).max(1);
        assert!(workers.len() >= t, "need {t} worker workspaces, got {}", workers.len());
        if t == 1 {
            return plan.execute_batch(xs, outs, injector, &mut workers[0]);
        }

        let mut slots = Vec::with_capacity(t);
        let mut xs_rest = &mut xs[..];
        let mut outs_rest = &mut outs[..];
        for (w, wws) in workers.iter_mut().take(t).enumerate() {
            let chunk_items = chunk_range(items, t, w).len();
            let (x_chunk, x_tail) = xs_rest.split_at_mut(chunk_items * n);
            let (o_chunk, o_tail) = outs_rest.split_at_mut(chunk_items * n);
            xs_rest = x_tail;
            outs_rest = o_tail;
            slots.push(Mutex::new((x_chunk, o_chunk, wws, FtReport::new())));
        }
        self.pool.run_chunks(items, |w, _range| {
            let mut slot = slots[w].lock();
            let (x_chunk, o_chunk, wws, local_rep) = &mut *slot;
            for (x, out) in x_chunk.chunks_exact_mut(n).zip(o_chunk.chunks_exact_mut(n)) {
                local_rep.merge(&plan.execute(x, out, injector, wws));
            }
        });
        let mut rep = FtReport::new();
        for slot in slots {
            rep.merge(&slot.into_inner().3);
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftfft_core::FtConfig;
    use ftfft_fault::{FaultKind, NoFaults, Part, ScriptedFault, ScriptedInjector};
    use ftfft_fft::Direction;
    use ftfft_numeric::uniform_signal;

    fn serial_run(scheme: Scheme, n: usize, inj: &dyn FaultInjector) -> (Vec<Complex64>, FtReport) {
        let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(scheme));
        let mut x = uniform_signal(n, 5);
        let mut out = vec![Complex64::ZERO; n];
        let mut ws = plan.make_workspace();
        let rep = plan.execute(&mut x, &mut out, inj, &mut ws);
        (out, rep)
    }

    fn pooled_run(
        scheme: Scheme,
        n: usize,
        threads: usize,
        inj: &dyn FaultInjector,
    ) -> (Vec<Complex64>, FtReport) {
        let plan =
            FtFftPlan::new(n, Direction::Forward, FtConfig::new(scheme).with_threads(threads));
        let pooled = PooledFtFft::new(plan);
        assert_eq!(pooled.threads(), threads);
        let mut x = uniform_signal(n, 5);
        let mut out = vec![Complex64::ZERO; n];
        let mut ws = pooled.make_workspace();
        let rep = pooled.execute(&mut x, &mut out, inj, &mut ws);
        (out, rep)
    }

    #[test]
    fn pooled_matches_serial_bitwise_clean() {
        for scheme in [Scheme::OnlineComp, Scheme::OnlineCompOpt] {
            for threads in [1usize, 2, 3, 7, 8] {
                let (want, want_rep) = serial_run(scheme, 1 << 10, &NoFaults);
                let (got, got_rep) = pooled_run(scheme, 1 << 10, threads, &NoFaults);
                assert_eq!(got, want, "{scheme:?} threads={threads}");
                assert_eq!(got_rep, want_rep, "{scheme:?} threads={threads}");
            }
        }
    }

    #[test]
    fn pooled_part1_faults_detected_identically() {
        // Per-index sites strike the same row at any worker count.
        let faults = || {
            vec![
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::First, index: 3 },
                    7,
                    FaultKind::AddDelta { re: 1e-3, im: 0.0 },
                ),
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::First, index: 30 },
                    1,
                    FaultKind::AddDelta { re: 0.0, im: -2.0 },
                ),
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::Second, index: 5 },
                    2,
                    FaultKind::AddDelta { re: 2.0, im: 2.0 },
                ),
            ]
        };
        let serial_inj = ScriptedInjector::new(faults());
        let (want, want_rep) = serial_run(Scheme::OnlineCompOpt, 1 << 10, &serial_inj);
        for threads in [2usize, 4, 8] {
            let inj = ScriptedInjector::new(faults());
            let (got, got_rep) = pooled_run(Scheme::OnlineCompOpt, 1 << 10, threads, &inj);
            assert!(inj.exhausted(), "threads={threads}");
            assert_eq!(got_rep, want_rep, "threads={threads}");
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn pooled_part2_faults_detected_identically_unoptimized() {
        // Second-part columns carry their own site index, so scripted
        // faults strike the same column at any worker count — including
        // under the unoptimized scheme, whose part-2 path also runs the
        // per-column twiddle DMR.
        let faults = || {
            vec![
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::Second, index: 0 },
                    1,
                    FaultKind::AddDelta { re: -3e-2, im: 0.0 },
                ),
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::Second, index: 14 },
                    2,
                    FaultKind::AddDelta { re: 0.0, im: 4.0 },
                ),
            ]
        };
        let serial_inj = ScriptedInjector::new(faults());
        let (want, want_rep) = serial_run(Scheme::OnlineComp, 1 << 10, &serial_inj);
        for threads in [2usize, 3, 5, 8] {
            let inj = ScriptedInjector::new(faults());
            let (got, got_rep) = pooled_run(Scheme::OnlineComp, 1 << 10, threads, &inj);
            assert!(inj.exhausted(), "threads={threads}");
            assert_eq!(got_rep, want_rep, "threads={threads}");
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn non_comp_schemes_fall_back_to_serial() {
        let (want, want_rep) = serial_run(Scheme::OnlineMemOpt, 1 << 9, &NoFaults);
        let (got, got_rep) = pooled_run(Scheme::OnlineMemOpt, 1 << 9, 4, &NoFaults);
        assert_eq!(got, want);
        assert_eq!(got_rep, want_rep);
    }

    #[test]
    fn pooled_batch_matches_serial_clean() {
        let n = 1 << 8;
        let batch = 5;
        let src = uniform_signal(n * batch, 9);
        let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
        let mut ws = plan.make_workspace();
        let mut xs = src.clone();
        let mut want = vec![Complex64::ZERO; n * batch];
        let want_rep = plan.execute_batch(&mut xs, &mut want, &NoFaults, &mut ws);

        for threads in [2usize, 3, 8] {
            let plan = FtFftPlan::new(
                n,
                Direction::Forward,
                FtConfig::new(Scheme::OnlineMemOpt).with_threads(threads),
            );
            let pooled = PooledFtFft::new(plan);
            let mut pws = pooled.make_batch_workspace();
            let mut xs = src.clone();
            let mut got = vec![Complex64::ZERO; n * batch];
            let got_rep = pooled.execute_batch(&mut xs, &mut got, &NoFaults, &mut pws);
            assert_eq!(got, want, "threads={threads}");
            assert_eq!(got_rep, want_rep, "threads={threads}");
        }
    }

    #[test]
    fn pooled_batch_corrects_faults_with_identical_totals() {
        let n = 1 << 8;
        let batch = 4;
        let src = uniform_signal(n * batch, 11);
        let faults = || {
            vec![ScriptedFault::new(
                Site::SubFftCompute { part: Part::First, index: 2 },
                3,
                FaultKind::AddDelta { re: 5e-2, im: 0.0 },
            )]
        };
        let plan = FtFftPlan::new(
            n,
            Direction::Forward,
            FtConfig::new(Scheme::OnlineMemOpt).with_threads(3),
        );
        let pooled = PooledFtFft::new(plan);
        let mut pws = pooled.make_batch_workspace();
        let mut xs = src.clone();
        let mut got = vec![Complex64::ZERO; n * batch];
        let inj = ScriptedInjector::new(faults());
        let rep = pooled.execute_batch(&mut xs, &mut got, &inj, &mut pws);
        assert!(inj.exhausted());
        assert_eq!(rep.comp_detected, 1, "{rep:?}");
        assert_eq!(rep.uncorrectable, 0);
        // Every item matches the clean transform — whichever item took the
        // fault, it was corrected.
        for (x, out) in src.chunks_exact(n).zip(got.chunks_exact(n)) {
            let want = ftfft_fft::fft(x);
            let err = ftfft_numeric::max_abs_diff(out, &want);
            assert!(err < 1e-8 * n as f64, "err={err}");
        }
    }
}

//! Parallel scheme selection — the four bars of Fig 8.

/// Which parallel FFT configuration to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParallelScheme {
    /// Plain six-step FFT, blocking transposes — baseline "FFTW".
    Fftw,
    /// Fault-tolerant scheme with the sequential optimizations only
    /// (blocking transposes) — "FT-FFTW".
    FtFftw,
    /// Plain FFT plus the §6 parallel optimizations (pipelined transposes,
    /// twiddle overlapped with communication) — "opt-FFTW".
    OptFftw,
    /// Fault tolerance plus the parallel optimizations: checksum work
    /// hidden behind communication (Fig 6) — "opt-FT-FFTW".
    OptFtFftw,
}

impl ParallelScheme {
    /// `true` when checksums/DMR protection is active.
    pub fn protected(self) -> bool {
        matches!(self, ParallelScheme::FtFftw | ParallelScheme::OptFtFftw)
    }

    /// `true` when Algorithm 3 overlap is active.
    pub fn overlap(self) -> bool {
        matches!(self, ParallelScheme::OptFftw | ParallelScheme::OptFtFftw)
    }

    /// Label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ParallelScheme::Fftw => "FFTW",
            ParallelScheme::FtFftw => "FT-FFTW",
            ParallelScheme::OptFftw => "opt-FFTW",
            ParallelScheme::OptFtFftw => "opt-FT-FFTW",
        }
    }

    /// All schemes in Fig 8 presentation order.
    pub const ALL: [ParallelScheme; 4] = [
        ParallelScheme::Fftw,
        ParallelScheme::FtFftw,
        ParallelScheme::OptFftw,
        ParallelScheme::OptFtFftw,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(!ParallelScheme::Fftw.protected());
        assert!(ParallelScheme::FtFftw.protected());
        assert!(!ParallelScheme::FtFftw.overlap());
        assert!(ParallelScheme::OptFtFftw.protected());
        assert!(ParallelScheme::OptFtFftw.overlap());
        assert!(ParallelScheme::OptFftw.overlap());
        assert_eq!(ParallelScheme::ALL.len(), 4);
    }
}

//! Calibrated network cost model.
//!
//! The simulated machine runs all ranks on one node, where channel latency
//! is far below a real interconnect's. To reproduce the paper's
//! communication/computation balance (and make the Algorithm 3 overlap
//! measurable), an optional α–β model delays each message: a message of `w`
//! complex words becomes visible `latency + w·per_word` after it was sent.
//! Receivers spin-wait on the deadline, emulating an in-flight message.

use std::time::{Duration, Instant};

/// α–β per-message cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Fixed per-message latency (α).
    pub latency: Duration,
    /// Per-complex-word transfer time (β).
    pub per_word: Duration,
}

impl NetworkModel {
    /// A model resembling a commodity cluster interconnect, scaled so that
    /// laptop-sized problems see a realistic comm/compute ratio.
    pub fn cluster() -> Self {
        NetworkModel { latency: Duration::from_micros(20), per_word: Duration::from_nanos(8) }
    }

    /// Deadline by which a `words`-long message sent at `sent` arrives.
    pub fn arrival(&self, sent: Instant, words: usize) -> Instant {
        sent + self.latency + self.per_word * words as u32
    }

    /// Spin until `deadline` (sub-millisecond precision matters here; a
    /// sleep would quantize to the scheduler tick).
    pub fn wait_until(deadline: Instant) {
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_scales_with_words() {
        let m = NetworkModel {
            latency: Duration::from_micros(10),
            per_word: Duration::from_nanos(100),
        };
        let t0 = Instant::now();
        let small = m.arrival(t0, 10);
        let big = m.arrival(t0, 10_000);
        assert!(big > small);
        assert_eq!(big - t0, Duration::from_micros(10) + Duration::from_nanos(100) * 10_000);
    }

    #[test]
    fn wait_until_respects_deadline() {
        let deadline = Instant::now() + Duration::from_micros(200);
        NetworkModel::wait_until(deadline);
        assert!(Instant::now() >= deadline);
    }
}

//! Persistent, work-stealing-free thread pool for batched/protected
//! transforms.
//!
//! The pooled executors ([`crate::PooledFtFft`]) fan independent units of
//! work — the `k` first-part sub-FFTs of the online scheme, or the items
//! of a batched transform — across long-lived worker threads. Design
//! goals, in order:
//!
//! 1. **Determinism.** Work is split by *static contiguous chunking*
//!    ([`chunk_range`]) — worker `w` always owns the same index range, so
//!    per-worker state (scratch workspaces, any seeds derived from the
//!    stable worker id) and the set of fault-injection sites each worker
//!    visits are identical run to run. There is no work stealing: stealing
//!    would trade determinism for load balance the near-uniform sub-FFT
//!    costs don't need.
//! 2. **No per-run thread spawns.** Workers are created once and parked on
//!    their own channel ([`crossbeam::channel`]); a run posts one closure
//!    per worker and waits. The caller thread participates as worker 0, so
//!    a pool of size 1 degenerates to a plain loop with zero overhead.
//!
//! Pool size resolution ([`resolve_threads`]), highest priority first:
//! explicit configuration (`FtConfig::threads`), then the
//! `FTFFT_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crossbeam::channel::{unbounded, Receiver, Sender};

pub use ftfft_fft::THREADS_ENV;

type Job = Box<dyn FnOnce() + Send>;

/// A persistent pool of `size − 1` parked worker threads (the caller is
/// worker 0).
pub struct ThreadPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Creates a pool that runs work on `size.max(1)` workers (spawning
    /// `size − 1` threads; the submitting thread is always worker 0).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let mut senders = Vec::with_capacity(size - 1);
        let mut handles = Vec::with_capacity(size - 1);
        for w in 1..size {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
            let handle = std::thread::Builder::new()
                .name(format!("ftfft-pool-{w}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("failed to spawn pool worker");
            senders.push(tx);
            handles.push(handle);
        }
        ThreadPool { senders, handles, size }
    }

    /// Number of workers (including the caller).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Splits `0..items` into at most `size` contiguous chunks and runs
    /// `f(worker, range)` for every non-empty chunk — workers `1..` on
    /// their pool threads, worker 0 on the calling thread. Blocks until
    /// every chunk finished; a panic in any chunk is propagated to the
    /// caller (after all workers have quiesced, so borrowed data stays
    /// valid for the workers' full lifetime).
    pub fn run_chunks<F>(&self, items: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let t = self.size.min(items).max(1);
        if t == 1 {
            if items > 0 {
                f(0, 0..items);
            }
            return;
        }
        self.fan_out(t, |w| f(w, chunk_range(items, t, w)));
    }

    /// Runs `work(w)` for every worker `w < t` — workers `1..` on their
    /// pool threads, worker 0 on the calling thread — and blocks until
    /// all finished, re-raising the first worker panic. The single home
    /// of the lifetime-erasure + completion-await machinery every fan-out
    /// entry point shares.
    fn fan_out<F>(&self, t: usize, work: F)
    where
        F: Fn(usize) + Sync,
    {
        debug_assert!(t >= 2 && t <= self.size);
        let w_ref: &(dyn Fn(usize) + Sync) = &work;
        // SAFETY: the erased reference is only used by jobs whose
        // completion messages are awaited below (on success *and* on
        // panic, via `WaitGuard`), so `work` strictly outlives every use.
        let w_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(w_ref) };

        let (done_tx, done_rx) = unbounded::<std::thread::Result<()>>();
        let mut guard = WaitGuard { rx: &done_rx, pending: 0 };
        for w in 1..t {
            let tx = done_tx.clone();
            let job: Job = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| w_static(w)));
                // A send error means the caller already panicked and left;
                // nothing useful to do with the result then.
                let _ = tx.send(result);
            });
            self.senders[w - 1].send(job).expect("pool worker thread died");
            guard.pending += 1;
        }
        // The caller is worker 0. If this panics, `guard`'s Drop still
        // waits for the outstanding workers before unwinding further.
        work(0);
        guard.finish();
    }

    /// Round-robin counterpart of [`run_chunks`](ThreadPool::run_chunks):
    /// worker `w` of `t` runs `f(w, i)` for every item `i ≡ w (mod t)`, in
    /// increasing order. The static modular assignment keeps per-worker
    /// state and fault-site visit sets identical run to run, like the
    /// contiguous chunking — but interleaves items across workers, which
    /// is what a frame *stream* wants: each worker's frames are spread
    /// evenly over the timeline instead of one worker owning the whole
    /// tail. Blocks until every item finished; panics propagate as in
    /// `run_chunks`.
    pub fn run_round_robin<F>(&self, items: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        let t = self.size.min(items).max(1);
        if t == 1 {
            for i in 0..items {
                f(0, i);
            }
            return;
        }
        self.fan_out(t, |w| {
            for i in (w..items).step_by(t) {
                f(w, i);
            }
        });
    }

    /// The worker count [`run_round_robin`](ThreadPool::run_round_robin)
    /// (and `run_chunks`) will actually use for `items` items — callers
    /// pre-splitting per-worker state must size it with the same rule.
    pub fn workers_for(&self, items: usize) -> usize {
        self.size.min(items).max(1)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Waits for outstanding worker completions; on the happy path
/// (`finish`) re-raises the first worker panic, on the unwinding path
/// (`drop`) just quiesces.
struct WaitGuard<'a> {
    rx: &'a Receiver<std::thread::Result<()>>,
    pending: usize,
}

impl WaitGuard<'_> {
    fn finish(mut self) {
        let mut first_panic = None;
        while self.pending > 0 {
            self.pending -= 1;
            if let Err(payload) = self.rx.recv().expect("pool worker hung up") {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        while self.pending > 0 {
            self.pending -= 1;
            let _ = self.rx.recv();
        }
    }
}

/// The contiguous index range worker `w` of `t` owns when `items` items
/// are split. Remainder-first balancing ([`ftfft_fft::chunk_range`] — the
/// same rule the two-halves parallel DIT uses): the first `items % t`
/// workers get one extra item, so chunk sizes never differ by more than
/// one and the last worker is never idle while worker 0 double-loads.
/// The single chunking rule every pooled executor uses, so row/buffer
/// pre-splits always line up with [`ThreadPool::run_chunks`].
pub fn chunk_range(items: usize, t: usize, w: usize) -> Range<usize> {
    ftfft_fft::chunk_range(items, t, w)
}

/// Resolves a pooled executor's worker count: an explicit `cfg` value wins;
/// else a positive [`THREADS_ENV`] value; else the machine's available
/// parallelism; at least 1. Shared with the FFT planner's parallel
/// strategy ([`ftfft_fft::resolve_threads`]) so both layers always agree
/// on the worker count.
pub fn resolve_threads(cfg: Option<usize>) -> usize {
    ftfft_fft::resolve_threads(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn chunks_partition_exactly() {
        for items in [0usize, 1, 2, 7, 64, 65, 1000] {
            for t in [1usize, 2, 3, 8] {
                let mut covered = 0;
                for w in 0..t {
                    let r = chunk_range(items, t, w);
                    assert_eq!(r.start, covered, "items={items} t={t} w={w}");
                    covered = r.end;
                }
                assert_eq!(covered, items);
            }
        }
    }

    #[test]
    fn chunk_sizes_are_balanced_for_one_to_eight_workers() {
        // The remainder goes to the leading workers, one item each —
        // no chunk ever differs from another by more than one item.
        for items in [0usize, 1, 5, 8, 9, 17, 100, 1023] {
            for t in 1..=8usize {
                let (base, rem) = (items / t, items % t);
                let mut covered = 0;
                for w in 0..t {
                    let r = chunk_range(items, t, w);
                    assert_eq!(r.start, covered, "items={items} t={t} w={w}");
                    assert_eq!(r.len(), base + usize::from(w < rem), "items={items} t={t} w={w}");
                    covered = r.end;
                }
                assert_eq!(covered, items);
            }
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = ThreadPool::new(4);
        let items = 1000;
        let hits: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
        pool.run_chunks(items, |_w, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn worker_assignment_is_static() {
        let pool = ThreadPool::new(3);
        let first = Mutex::new(vec![usize::MAX; 10]);
        let second = Mutex::new(vec![usize::MAX; 10]);
        for target in [&first, &second] {
            pool.run_chunks(10, |w, range| {
                let mut t = target.lock().unwrap();
                for i in range {
                    t[i] = w;
                }
            });
        }
        assert_eq!(*first.lock().unwrap(), *second.lock().unwrap());
        assert!(first.lock().unwrap().iter().all(|&w| w != usize::MAX));
    }

    #[test]
    fn size_one_runs_inline() {
        let pool = ThreadPool::new(1);
        let mut seen = Vec::new();
        let cell = Mutex::new(&mut seen);
        pool.run_chunks(5, |w, range| {
            assert_eq!(w, 0);
            cell.lock().unwrap().extend(range);
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_survives_many_runs() {
        let pool = ThreadPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run_chunks(8, |_, range| {
                counter.fetch_add(range.len(), Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 800);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_chunks(2, |w, _| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool is still usable afterwards.
        let counter = AtomicUsize::new(0);
        pool.run_chunks(4, |_, r| {
            counter.fetch_add(r.len(), Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn round_robin_runs_every_item_once_with_modular_assignment() {
        let pool = ThreadPool::new(3);
        let items = 100;
        let owner: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let hits: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
        pool.run_round_robin(items, |w, i| {
            owner[i].store(w, Ordering::SeqCst);
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for i in 0..items {
            assert_eq!(hits[i].load(Ordering::SeqCst), 1, "item {i}");
            assert_eq!(owner[i].load(Ordering::SeqCst), i % 3, "item {i}");
        }
        assert_eq!(pool.workers_for(items), 3);
        assert_eq!(pool.workers_for(2), 2);
        assert_eq!(pool.workers_for(0), 1);
    }

    #[test]
    fn round_robin_size_one_runs_inline_in_order() {
        let pool = ThreadPool::new(1);
        let seen = Mutex::new(Vec::new());
        pool.run_round_robin(5, |w, i| {
            assert_eq!(w, 0);
            seen.lock().unwrap().push(i);
        });
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn resolve_threads_prefers_explicit_config() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` backed by
//! `std::sync::mpsc`. The workspace only uses unbounded point-to-point
//! channels (one sender, one receiver per mesh edge), which std's channel
//! covers with identical semantics: FIFO per pair, non-blocking send.

/// Multi-producer channels (the subset of `crossbeam-channel` we need).
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Creates an unbounded FIFO channel; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails if all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_round_trip() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        std::thread::spawn(move || tx.send(42usize).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-definition API this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `BenchmarkId`, `Bencher::iter`) on top of a plain
//! wall-clock measurement loop: a warm-up call, then `sample_size` timed
//! samples, reporting min/mean per sample. No statistics, plots, or saved
//! baselines — the goal is that bench targets compile, run fast, and print
//! one honest line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier, like upstream.
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once to warm up, then `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes (the
    /// `FTFFT_BENCH_SAMPLES` env var, when set, caps this — CI smoke runs
    /// use it to shorten benches without touching bench sources).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Defines and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size.min(self.criterion.sample_cap);
        let mut b = Bencher { samples: Vec::new(), sample_size };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self.criterion.ran += 1;
        self
    }

    /// Ends the group (upstream flushes reports here; we report inline).
    pub fn finish(self) {}
}

/// Entry point handed to each bench function.
pub struct Criterion {
    default_sample_size: usize,
    sample_cap: usize,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `FTFFT_BENCH_SAMPLES` caps every benchmark's sample count
        // (including explicit `sample_size` calls) so CI can smoke-run
        // `cargo bench` quickly.
        let sample_cap = std::env::var("FTFFT_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(usize::MAX);
        Criterion { default_sample_size: 10, sample_cap, ran: 0 }
    }
}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }

    /// Defines and runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", f);
        self.ran += 1;
        self
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<48} mean {:>12} min {:>12} ({} samples)",
        fmt_dur(mean),
        fmt_dur(min),
        samples.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundles bench functions into one runnable group, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fft", 1024).to_string(), "fft/1024");
        assert_eq!(BenchmarkId::from_parameter("plain").to_string(), "plain");
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides exactly the API surface the workspace uses: a seedable,
//! deterministic [`rngs::StdRng`] plus the [`Rng`]/[`SeedableRng`] traits
//! with `gen`, `gen_range` and the range flavours that appear in the code.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `rand`'s ChaCha-based `StdRng`, but every consumer in
//! this workspace only relies on *determinism under a fixed seed*, which
//! this shim guarantees: the same seed always yields the same sequence, on
//! every platform and every run.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Constructing a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from their "natural" distribution
/// (`f64` in `[0, 1)`, `bool` fair coin, integers over the full domain).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (SplitMix64-expanded seed).
    ///
    /// Stream differs from upstream `rand`'s ChaCha12 `StdRng`, but is
    /// stable across runs, builds, and platforms for a given seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 16);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let i = rng.gen_range(0..17usize);
            assert!(i < 17);
            let b = rng.gen_range(52..=62u8);
            assert!((52..=62).contains(&b));
        }
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property suites use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `prop::collection::vec`, `prop::sample::select`, the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from upstream, by design:
//! - **Deterministic**: every test case is seeded from a stable hash of the
//!   test name and the case index. No entropy, no `PROPTEST_` env vars, so
//!   failures reproduce exactly across runs and machines.
//! - **No shrinking**: a failing case reports its seed and inputs are
//!   regenerated identically on re-run, which substitutes for shrinking in
//!   a deterministic harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies while generating one test case.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the generator for (`test_name`, `case`).
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index, so every
        // test gets its own stable stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.0.gen_range(lo..hi)
    }

    /// Uniform `u64` in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(0..n)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A strategy that always yields a clone of the same value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64(self.start, self.end)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Strategy combinators namespaced like upstream's `prop::` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Sizes accepted by [`vec()`]: an exact length or a range of lengths.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end - 1 }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi: *r.end() }
            }
        }

        /// Generates `Vec`s whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.size.lo == self.size.hi {
                    self.size.lo
                } else {
                    self.size.lo + rng.below((self.size.hi - self.size.lo) as u64 + 1) as usize
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniformly picks one element of `options` per case.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select { options }
        }

        /// See [`select`].
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Runner configuration and failure plumbing.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (carries the formatted assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current property case unless the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}",
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current property case if the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}",
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
}

/// Declares deterministic property tests.
///
/// Supports the upstream shape used in this workspace: an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@runner ($cfg); $($rest)*);
    };
    (@runner ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            $(let $arg = $strat;)*
            #[allow(unused_parens)]
            let strategies = ($($arg),*);
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), case);
                #[allow(unused_parens)]
                let ($($arg),*) = {
                    #[allow(unused_parens)]
                    let ($($arg),*) = &strategies;
                    ($($crate::Strategy::generate($arg, &mut rng)),*)
                };
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "property {} failed at case {case}/{}: {}",
                        stringify!($name),
                        cfg.cases,
                        e.0
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@runner ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let strat = (0u32..100).prop_map(|x| x * 2);
        let mut r1 = crate::TestRng::for_case("t", 0);
        let mut r2 = crate::TestRng::for_case("t", 0);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in -1.0f64..1.0, n in 1u32..=8) {
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!((1..=8).contains(&n));
        }

        #[test]
        fn vec_has_requested_len(v in prop::collection::vec(0u8..255, 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn select_picks_member(m in prop::sample::select(vec![2usize, 3, 5])) {
            prop_assert!([2usize, 3, 5].contains(&m));
        }

        #[test]
        fn flat_map_scales(v in (1u32..=4).prop_flat_map(|k| prop::collection::vec(0.0f64..1.0, 1usize << k))) {
            prop_assert!(v.len().is_power_of_two() && v.len() >= 2 && v.len() <= 16);
        }
    }
}

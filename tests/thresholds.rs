//! Threshold and round-off behaviour: no false positives across many
//! fault-free seeds, residuals within the §8 model, throughput accounting.

use ftfft::prelude::*;

#[test]
fn no_false_positives_over_many_seeds() {
    let n = 4096;
    let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
    let mut ws = plan.make_workspace();
    for seed in 0..40u64 {
        let mut x = uniform_signal(n, seed);
        let mut out = vec![Complex64::ZERO; n];
        let rep = plan.execute(&mut x, &mut out, &NoFaults, &mut ws);
        assert!(rep.is_clean(), "seed {seed}: {rep:?}");
    }
}

#[test]
fn no_false_positives_with_normal_inputs() {
    let n = 4096;
    let cfg =
        FtConfig::new(Scheme::OnlineMemOpt).with_sigma0(SignalDist::Normal.component_std_dev());
    let plan = FtFftPlan::new(n, Direction::Forward, cfg);
    let mut ws = plan.make_workspace();
    for seed in 0..20u64 {
        let mut x = ftfft::numeric::normal_signal(n, seed);
        let mut out = vec![Complex64::ZERO; n];
        let rep = plan.execute(&mut x, &mut out, &NoFaults, &mut ws);
        assert!(rep.is_clean(), "seed {seed}: {rep:?}");
    }
}

#[test]
fn observed_residuals_sit_below_model_thresholds() {
    let n = 4096;
    let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineCompOpt));
    let th = *plan.thresholds();
    let mut ws = plan.make_workspace();
    let mut max1 = 0.0f64;
    let mut max2 = 0.0f64;
    for seed in 100..130u64 {
        let mut x = uniform_signal(n, seed);
        let mut out = vec![Complex64::ZERO; n];
        let rep = plan.execute(&mut x, &mut out, &NoFaults, &mut ws);
        max1 = max1.max(rep.max_ok_residual_part1);
        max2 = max2.max(rep.max_ok_residual_part2);
    }
    assert!(max1 > 0.0 && max1 <= th.eta1, "part1 max {max1:.3e} vs η1 {:.3e}", th.eta1);
    assert!(max2 > 0.0 && max2 <= th.eta2, "part2 max {max2:.3e} vs η2 {:.3e}", th.eta2);
    // Table 4's structure: the second part's residual floor is higher.
    assert!(max2 > max1, "second part carries larger values");
}

#[test]
fn threshold_scale_zero_forces_detection_storm() {
    // Degenerate setting: η = 0 turns every round-off wiggle into a
    // "detected error"; the executor must still terminate (bounded
    // retries) and report the failures as uncorrectable.
    let n = 256;
    let cfg = FtConfig::new(Scheme::OnlineCompOpt).with_threshold_scale(0.0).with_max_retries(1);
    let plan = FtFftPlan::new(n, Direction::Forward, cfg);
    let mut x = uniform_signal(n, 1);
    let mut out = vec![Complex64::ZERO; n];
    let rep = plan.execute_alloc(&mut x, &mut out, &NoFaults);
    assert!(rep.uncorrectable > 0);
    assert!(rep.subfft_recomputed > 0);
}

#[test]
fn throughput_model_matches_paper_constants() {
    // η = 3σ√N ⇒ 0.997 (§8.1).
    let t = throughput(3.0, 1.0);
    assert!((t - 0.997).abs() < 5e-4);
    // Campaign bookkeeping.
    assert!((ftfft::roundoff::empirical_throughput(997, 3) - 0.997).abs() < 1e-9);
}

#[test]
fn calibrator_reproduces_table6_protocol() {
    // Fault-free runs → max residual → η with headroom → no false alarms.
    let n = 1024;
    let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineCompOpt));
    let mut ws = plan.make_workspace();
    let mut cal = Calibrator::new();
    for seed in 0..10u64 {
        let mut x = uniform_signal(n, seed);
        let mut out = vec![Complex64::ZERO; n];
        let rep = plan.execute(&mut x, &mut out, &NoFaults, &mut ws);
        cal.observe(rep.max_ok_residual_part1.max(rep.max_ok_residual_part2));
    }
    assert_eq!(cal.count(), 10);
    let eta = cal.eta(2.0);
    assert!(eta > 0.0);
    // The calibrated η must clear every observed residual.
    assert!(eta >= cal.max_residual());
}

#[test]
fn model_thresholds_scale_with_problem_size() {
    let sigma = SignalDist::Uniform.component_std_dev();
    let small = thresholds_for_split(1 << 10, 1 << 5, 1 << 5, sigma);
    let large = thresholds_for_split(1 << 20, 1 << 10, 1 << 10, sigma);
    assert!(large.eta1 > small.eta1);
    assert!(large.eta_offline > small.eta_offline);
    // The offline/online gap grows with N — the Table 5 story.
    assert!(large.eta_offline / large.eta2 > small.eta_offline / small.eta2);
}

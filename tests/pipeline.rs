//! End-to-end protected pipeline: CRC guarding, frame sync, backpressure,
//! and the seeded fault campaign (proptest).
//!
//! The load-bearing property is the last one: under a composed campaign —
//! compute bit-flips inside the protected transforms, memory strikes on
//! CRC-guarded cold buffers, scripted stage panics — the delivered output
//! is **bitwise identical** to the fault-free run, across schemes, stages,
//! and planner thread counts. Corruption may be *detected and healed* or
//! the frame *dropped with accounting*; silently delivering wrong bits is
//! never an outcome (and the zero-quarantine assertion pins that the
//! ladder healed everything in these campaigns rather than dropping).

use ftfft::prelude::*;
use ftfft::stream::pipeline::sync::whiten;
use proptest::prelude::*;

fn spec(n: usize, scheme: Scheme, threads: usize) -> PlanSpec {
    PlanSpec::builder(n).scheme(scheme).threads(threads).build()
}

fn real_signal(len: usize, seed: u64) -> Vec<f64> {
    uniform_signal(len, seed).iter().map(|z| z.re * 0.5).collect()
}

/// Runs `stream` through a freshly built pipeline and returns the
/// delivered frames plus the report.
fn run(
    builder: PipelineBuilder,
    stream: &[u8],
    injector: &dyn FaultInjector,
    mem: &dyn ByteFaultInjector,
) -> (Vec<DeliveredFrame>, PipelineReport) {
    let mut p = builder.build();
    let mut sink = Vec::new();
    p.process(stream, injector, mem, &mut sink);
    (sink, p.report())
}

fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any single bit flip anywhere in a CRC-guarded f64 buffer is
    /// detected; the untouched buffer verifies.
    #[test]
    fn crc_detects_any_single_bit_flip(
        words in prop::collection::vec(-1.0e3f64..1.0e3, 1..64),
        word_pick in 0usize..64,
        bit in 0usize..64,
    ) {
        let clean = crc32_f64s(&words);
        prop_assert_eq!(clean, crc32_f64s(&words.clone()));
        let mut corrupted = words.clone();
        let w = word_pick % corrupted.len();
        corrupted[w] = f64::from_bits(corrupted[w].to_bits() ^ (1u64 << bit));
        prop_assert_ne!(crc32_f64s(&corrupted), clean);
    }

    /// The link-layer randomizer is a self-inverse whitening, whatever
    /// the payload.
    #[test]
    fn whitening_is_self_inverse(payload in prop::collection::vec(0u8..=255, 0..256)) {
        let mut buf = payload.clone();
        whiten(&mut buf);
        whiten(&mut buf);
        prop_assert_eq!(buf, payload);
    }

    /// A corrupted sync marker costs bounded frames (counted as sync
    /// losses), and the survivors are bitwise identical to the clean run.
    #[test]
    fn sync_chaos_is_counted_and_survivable(
        seed in 0u64..1000,
        victim in 1usize..7,
        flip in 0usize..32,
    ) {
        let n = 32usize;
        let frames = 8;
        let signal = real_signal(n * frames, seed);
        let stream = encode_stream(&signal, n);
        let s = spec(n, Scheme::OnlineMemOpt, 1);

        let (want, _) = run(PipelineBuilder::new(&s), &stream, &NoFaults, &NoByteFaults);
        prop_assert_eq!(want.len(), frames);

        // Corrupt one bit of one frame's 4-byte marker.
        let frame_bytes = 4 + 2 * n;
        let mut chaos = stream.clone();
        chaos[victim * frame_bytes + flip / 8] ^= 1 << (flip % 8);
        let (got, rep) = run(PipelineBuilder::new(&s), &chaos, &NoFaults, &NoByteFaults);

        prop_assert_eq!(rep.sync.sync_losses, 1);
        prop_assert!(got.len() >= frames - 2, "lost too much: {}", got.len());
        // Every delivered frame matches its clean counterpart bitwise
        // (seq numbers shift across the gap, so match by content order).
        let want_payloads: Vec<&Vec<f64>> = want.iter().map(|f| &f.samples).collect();
        for g in &got {
            prop_assert!(
                want_payloads.contains(&&g.samples),
                "delivered frame matches no clean frame"
            );
        }
    }

    /// Sustained overload degrades gracefully: bounded queue depth,
    /// counted drops, and full conservation of accepted frames.
    #[test]
    fn overload_sheds_load_with_conservation(
        seed in 0u64..1000,
        qcap in 2usize..6,
        rcap in 2usize..6,
    ) {
        let n = 32usize;
        let frames = 20;
        let stream = encode_stream(&real_signal(n * frames, seed), n);
        let mut p = PipelineBuilder::new(&spec(n, Scheme::Plain, 1))
            .queue_capacity(qcap)
            .ring_capacity(rcap)
            .build();
        // Ingest the whole burst at once, then drain with a paced sink:
        // deliver at most one frame per pump.
        p.push_bytes(&stream);
        let mut delivered = 0u64;
        loop {
            let pumped = p.pump(&NoFaults, &NoByteFaults);
            if p.pop_frame(&NoFaults).is_some() {
                delivered += 1;
            } else if !pumped {
                break;
            }
        }
        let rep = p.report();
        prop_assert_eq!(rep.sync.frames_synced, frames as u64);
        prop_assert_eq!(rep.ingest.accepted + rep.ingest.dropped, frames as u64);
        prop_assert!(rep.ingest.dropped > 0, "burst of {} must overflow cap {}", frames, qcap);
        prop_assert!(rep.ingest.high_water <= qcap as u64);
        prop_assert!(rep.cold.high_water <= rcap as u64);
        prop_assert_eq!(
            rep.sink.delivered + rep.transform.quarantined + rep.cold.quarantined,
            rep.ingest.accepted
        );
        prop_assert_eq!(rep.sink.delivered, delivered);
    }
}

proptest! {
    // The campaign runs full protected transforms per case; keep the case
    // count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The composed fault campaign: compute faults + cold-memory strikes
    /// + stage panics, and the sink is still bitwise identical to the
    /// fault-free run — across schemes, stage types, and thread counts.
    #[test]
    fn campaign_output_is_bitwise_identical(
        seed in 0u64..10_000,
        scheme in prop::sample::select(vec![Scheme::OnlineCompOpt, Scheme::OnlineMemOpt]),
        fir in prop::sample::select(vec![false, true]),
        threads in 1usize..3,
    ) {
        let n = 64usize;
        let frames = 10;
        let s = spec(n, scheme, threads);
        let taps = [0.5, 0.25, -0.125, 0.0625];
        let build = || {
            let b = PipelineBuilder::new(&s);
            if fir { b.fir(&taps) } else { b.spectral_gate(0.0) }
        };
        let frame_len = build().build().frame_len();
        let stream = encode_stream(&real_signal(frame_len * frames, seed), frame_len);

        let (want, clean_rep) = run(build(), &stream, &NoFaults, &NoByteFaults);
        prop_assert_eq!(want.len(), frames);
        prop_assert!(clean_rep.is_clean());

        // Compute faults: exponent-range bit flips (always detectable) at
        // sub-FFT compute sites (always bitwise-correctable by recompute).
        let comp = RandomInjector::new(
            seed ^ 0xC0FFEE,
            0.05,
            RandomKind::BitFlipInRange { lo: 52, hi: 62 },
            6,
        )
        .with_site_filter(|site| matches!(site, Site::SubFftCompute { .. }));
        // Stage panics at scripted callback occurrences.
        let chaos = PanicInjector::new(
            comp,
            vec![PanicPoint::any(3), PanicPoint::any(700), PanicPoint::any(2100)],
        );
        // Memory strikes on the CRC-guarded cold outputs only (retained
        // inputs stay intact so recovery is always bitwise recompute).
        let mem = RandomByteInjector::new(seed ^ 0xDEAD, 0.4, ByteFaultKind::BitFlip, 4)
            .with_region_filter(|r| matches!(r, ByteRegion::ColdSlot { .. }));

        let (got, rep) = quiet_panics(|| run(build(), &stream, &chaos, &mem));

        // Bitwise identity of the delivered stream, fault-free vs campaign.
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.seq, w.seq);
            let gb: Vec<u64> = g.samples.iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u64> = w.samples.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(gb, wb, "frame {} diverged", g.seq);
        }

        // Accounting: nothing dropped, every cold strike detected and
        // healed, every caught panic retried into success.
        prop_assert_eq!(rep.dropped(), 0, "{:?}", rep);
        let mem_fired = mem.fired() as u64;
        prop_assert_eq!(rep.cold.crc_detected, mem_fired);
        prop_assert_eq!(rep.cold.recomputed, mem_fired);
        prop_assert_eq!(rep.sink.recovered, mem_fired);
        prop_assert_eq!(rep.transform.panics_caught, rep.transform.retries);
        prop_assert!(chaos.panics_fired() >= 1, "campaign fired no panic");
    }
}

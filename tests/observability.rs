//! Observability invariants.
//!
//! The contract of `ftfft-obs` is that watching never changes the
//! computation: with recording enabled, disabled at runtime
//! (`FTFFT_OBS` / `set_enabled`), or compiled out (`no-obs` feature),
//! every output buffer and every `FtReport` / `PipelineReport` is
//! bitwise identical. These tests drive fault campaigns through the
//! protected executors and the pipeline under both switch positions and
//! compare the results bit for bit. Under `--features no-obs` both
//! positions degenerate to "off" (`set_enabled` is a no-op), so the
//! comparisons still hold and also pin the no-op semantics.

use ftfft::prelude::*;
use ftfft::stream::encode_stream;
use proptest::prelude::*;

/// `set_enabled` is process-global; every test that toggles it holds
/// this lock and restores the environment's decision before releasing.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` once with recording on and once off (under `no-obs` both
/// runs are off), returning both results for bitwise comparison.
fn with_obs_both<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let env_on = std::env::var(ftfft::obs::OBS_ENV)
        .map(|v| !matches!(v.to_ascii_lowercase().as_str(), "0" | "off" | "false" | "no"))
        .unwrap_or(true);
    ftfft::obs::set_enabled(true);
    let on = f();
    ftfft::obs::set_enabled(false);
    let off = f();
    ftfft::obs::set_enabled(env_on);
    (on, off)
}

fn campaign_injector(seed: u64) -> RandomInjector {
    RandomInjector::new(seed, 0.08, RandomKind::BitFlipInRange { lo: 52, hi: 62 }, 6)
        .with_site_filter(|s| matches!(s, Site::SubFftCompute { .. }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Protected executes under a randomized compute-fault campaign are
    /// bitwise identical whether or not observability is recording.
    #[test]
    fn plan_outputs_are_bitwise_identical_across_the_kill_switch(
        seed in 0u64..1_000,
        log2n in 4u32..9,
        mem_scheme in 0u8..2,
    ) {
        let _guard = obs_lock();
        let n = 1usize << log2n;
        let scheme = if mem_scheme == 1 { Scheme::OnlineMemOpt } else { Scheme::OnlineCompOpt };
        let plan = FtFftPlan::from_spec(&PlanSpec::builder(n).scheme(scheme).build());
        let mut ws = plan.make_workspace();
        let input = uniform_signal(n, seed);
        let (on, off) = with_obs_both(|| {
            let inj = campaign_injector(seed);
            let mut x = input.clone();
            let mut out = vec![Complex64::ZERO; n];
            let rep = plan.execute(&mut x, &mut out, &inj, &mut ws);
            (out, rep)
        });
        // Bitwise, not approximate: observability must be invisible.
        prop_assert_eq!(&on.0, &off.0);
        prop_assert_eq!(on.1, off.1);
    }

    /// A full pipeline chaos campaign (compute faults + cold-memory
    /// strikes) delivers bitwise-identical frames and reports across the
    /// kill switch.
    #[test]
    fn pipeline_campaign_is_bitwise_identical_across_the_kill_switch(seed in 0u64..1_000) {
        let _guard = obs_lock();
        let spec = PlanSpec::builder(64).scheme(Scheme::OnlineMemOpt).build();
        let signal: Vec<f64> =
            uniform_signal(64 * 8, seed).iter().map(|z| z.re * 0.5).collect();
        let stream = encode_stream(&signal, 64);
        let (on, off) = with_obs_both(|| {
            let mut p = PipelineBuilder::new(&spec).build();
            let comp = campaign_injector(seed ^ 0xABCD);
            let mem = RandomByteInjector::new(seed ^ 0x1234, 0.3, ByteFaultKind::BitFlip, 6)
                .with_region_filter(|r| matches!(r, ByteRegion::ColdSlot { .. }));
            let mut sink = Vec::new();
            p.process(&stream, &comp, &mem, &mut sink);
            (sink, p.report())
        });
        prop_assert_eq!(&on.0, &off.0);
        prop_assert_eq!(on.1, off.1);
    }
}

/// The service path: same submissions, recording on vs off, bitwise
/// identical responses and reports (latency fields excluded — they are
/// wall-clock, not computation).
#[test]
fn service_outputs_are_bitwise_identical_across_the_kill_switch() {
    let _guard = obs_lock();
    let spec = PlanSpec::builder(128).scheme(Scheme::OnlineCompOpt).build();
    let (on, off) = with_obs_both(|| {
        let svc = FftService::new(ServiceConfig::default().with_workers(2));
        let tickets: Vec<_> = (0..6)
            .map(|i| svc.submit(&format!("t{}", i % 2), &spec, uniform_signal(128, i)))
            .collect();
        tickets.into_iter().map(|t| t.wait()).map(|r| (r.output, r.report)).collect::<Vec<_>>()
    });
    assert_eq!(on, off);
}

/// While recording *is* enabled, the pipeline's flight recorder must
/// reconcile exactly with the report — and its trail must stay ordered
/// and bounded. (Meaningless under `no-obs` or `FTFFT_OBS=off`, where
/// nothing records; the enabled() guard keeps those CI legs green.)
#[test]
fn pipeline_flight_recorder_reconciles_and_stays_ordered() {
    let _guard = obs_lock();
    if !ftfft::obs::enabled() {
        return;
    }
    let spec = PlanSpec::builder(64).scheme(Scheme::OnlineMemOpt).build();
    let signal: Vec<f64> = uniform_signal(64 * 32, 11).iter().map(|z| z.re * 0.5).collect();
    let stream = encode_stream(&signal, 64);
    let mut p = PipelineBuilder::new(&spec).queue_capacity(4).build();
    p.recorder().set_autodump(false);
    let comp = campaign_injector(77);
    let mem = RandomByteInjector::new(13, 0.4, ByteFaultKind::BitFlip, 6)
        .with_region_filter(|r| matches!(r, ByteRegion::ColdSlot { .. }));
    let mut sink = Vec::new();
    for chunk in stream.chunks(900) {
        p.process(chunk, &comp, &mem, &mut sink);
    }
    let (rec, rep) = (p.recorder(), p.report());
    assert!(rep.detected() > 0, "campaign must strike: {rep:?}");
    assert_eq!(rec.total(EventKind::FaultDetected), rep.detected());
    assert_eq!(rec.total(EventKind::FaultCorrected), rep.corrected());
    assert_eq!(rec.total(EventKind::Quarantine) + rec.total(EventKind::Shed), rep.dropped());
    assert_eq!(rec.total(EventKind::SyncLoss), rep.sync.sync_losses);
    let trail = rec.trail();
    assert!(trail.len() <= rec.capacity());
    for pair in trail.windows(2) {
        assert!(pair[1].seq > pair[0].seq, "trail must be strictly ordered");
    }
}

/// Pins the switch semantics the other tests rely on: under the default
/// build `set_enabled` toggles recording; under `no-obs` it is a no-op
/// and `enabled()` is pinned false.
#[test]
fn kill_switch_semantics() {
    let _guard = obs_lock();
    let env_on = std::env::var(ftfft::obs::OBS_ENV)
        .map(|v| !matches!(v.to_ascii_lowercase().as_str(), "0" | "off" | "false" | "no"))
        .unwrap_or(true);
    ftfft::obs::set_enabled(true);
    #[cfg(not(feature = "no-obs"))]
    assert!(ftfft::obs::enabled());
    #[cfg(feature = "no-obs")]
    assert!(!ftfft::obs::enabled());
    ftfft::obs::set_enabled(false);
    assert!(!ftfft::obs::enabled());
    ftfft::obs::set_enabled(env_on);
}

//! Memory-fault tolerance: location, sizing and repair of corrupted words
//! across input / intermediate / output regions, for both hierarchies
//! (Fig 2 and Fig 3) and the offline-with-memory baseline.

use ftfft::prelude::*;

const N: usize = 1024;

fn run_mem(
    scheme: Scheme,
    faults: Vec<ScriptedFault>,
) -> (Vec<Complex64>, Vec<Complex64>, FtReport) {
    let x = uniform_signal(N, 3);
    let want = dft_naive(&x, Direction::Forward);
    let plan = FtFftPlan::new(N, Direction::Forward, FtConfig::new(scheme));
    let inj = ScriptedInjector::new(faults);
    let mut xin = x;
    let mut out = vec![Complex64::ZERO; N];
    let rep = plan.execute_alloc(&mut xin, &mut out, &inj);
    assert_eq!(inj.unfired(), Vec::<usize>::new(), "all faults must fire");
    (out, want, rep)
}

#[test]
fn input_region_every_offset_class() {
    for element in [0usize, 1, 31, 32, 500, N - 1] {
        for scheme in [Scheme::OnlineMem, Scheme::OnlineMemOpt] {
            let (out, want, rep) = run_mem(
                scheme,
                vec![ScriptedFault::new(
                    Site::InputMemory,
                    element,
                    FaultKind::SetValue { re: 6.0, im: -6.0 },
                )],
            );
            assert_eq!(rep.mem_detected, 1, "{scheme:?} el={element}: {rep:?}");
            assert_eq!(rep.mem_corrected, 1, "{scheme:?} el={element}");
            assert!(
                ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * N as f64,
                "{scheme:?} el={element}"
            );
        }
    }
}

#[test]
fn intermediate_region_both_hierarchies() {
    for element in [0usize, 100, 777, N - 1] {
        for scheme in [Scheme::OnlineMem, Scheme::OnlineMemOpt] {
            let (out, want, rep) = run_mem(
                scheme,
                vec![ScriptedFault::new(
                    Site::IntermediateMemory,
                    element,
                    FaultKind::AddDelta { re: -2.5, im: 2.5 },
                )],
            );
            assert_eq!(rep.mem_detected, 1, "{scheme:?} el={element}: {rep:?}");
            assert_eq!(rep.mem_corrected, 1, "{scheme:?} el={element}");
            assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * N as f64);
        }
    }
}

#[test]
fn output_region_repair() {
    for scheme in [Scheme::OnlineMem, Scheme::OnlineMemOpt] {
        let (out, want, rep) = run_mem(
            scheme,
            vec![ScriptedFault::new(
                Site::OutputMemory,
                600,
                FaultKind::SetValue { re: 0.0, im: 0.0 },
            )],
        );
        assert_eq!(rep.mem_corrected, 1, "{scheme:?}: {rep:?}");
        assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * N as f64);
    }
}

#[test]
fn bit_flips_across_the_exponent_range() {
    // High bits (§9.4.3): everything from mid-mantissa up must be caught.
    // Correcting a delta of magnitude |e| from checksum differences leaves
    // an O(ε·|e|) residue, so the repair iterates (one round per factor of
    // ~1e16); give the retry loop budget for the big exponent bits.
    let x = uniform_signal(N, 3);
    let want = dft_naive(&x, Direction::Forward);
    let cfg = FtConfig::new(Scheme::OnlineMemOpt).with_max_retries(30);
    let plan = FtFftPlan::new(N, Direction::Forward, cfg);
    for bit in [52u8, 54, 56, 58, 60, 63] {
        for component in [Component::Re, Component::Im] {
            let inj = ScriptedInjector::new(vec![ScriptedFault::new(
                Site::InputMemory,
                321,
                FaultKind::BitFlip { bit, component },
            )]);
            let mut xin = x.clone();
            let mut out = vec![Complex64::ZERO; N];
            let rep = plan.execute_alloc(&mut xin, &mut out, &inj);
            assert!(rep.mem_detected >= 1, "bit={bit} {component:?}: {rep:?}");
            assert!(
                ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * N as f64,
                "bit={bit} {component:?}: {rep:?}"
            );
        }
    }
}

#[test]
fn overflow_class_bit_flips_detected_but_may_stay_uncorrected() {
    // Flipping the very top exponent bits of a ~1-magnitude value produces
    // ~1e300 corruptions whose FFT overflows to inf/NaN; the checksums
    // detect this but location/size decoding degenerates — the paper's
    // Table 6 "Uncorrected" bucket (2.5% for the online scheme).
    let x = uniform_signal(N, 3);
    let cfg = FtConfig::new(Scheme::OnlineMemOpt).with_max_retries(5);
    let plan = FtFftPlan::new(N, Direction::Forward, cfg);
    let inj = ScriptedInjector::new(vec![ScriptedFault::new(
        Site::InputMemory,
        321,
        FaultKind::BitFlip { bit: 62, component: Component::Re },
    )]);
    let mut xin = x;
    let mut out = vec![Complex64::ZERO; N];
    let rep = plan.execute_alloc(&mut xin, &mut out, &inj);
    // Never silent: the corruption is flagged one way or another.
    assert!(rep.mem_detected + rep.uncorrectable > 0, "{rep:?}");
}

#[test]
fn offline_memory_scheme_recovers_but_pays_full_recompute() {
    let (out, want, rep) = run_mem(
        Scheme::OfflineMem,
        vec![ScriptedFault::new(Site::InputMemory, 40, FaultKind::SetValue { re: 8.0, im: 8.0 })],
    );
    assert_eq!(rep.mem_corrected, 1, "{rep:?}");
    assert!(rep.full_recomputed >= 1, "offline recovery restarts the transform");
    assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * N as f64);
}

#[test]
fn two_memory_faults_in_different_subfft_regions() {
    // The model guarantees recovery as long as two faults do not strike
    // the same protected region; put them in different first-part inputs.
    let (out, want, rep) = run_mem(
        Scheme::OnlineMemOpt,
        vec![
            // Elements 5 and 6 fall in different stride-k columns.
            ScriptedFault::new(Site::InputMemory, 5, FaultKind::SetValue { re: 1.0, im: 1.0 }),
            ScriptedFault::new(Site::InputMemory, 6, FaultKind::SetValue { re: -1.0, im: -1.0 })
                .at_occurrence(0),
        ],
    );
    assert_eq!(rep.mem_detected, 2, "{rep:?}");
    assert_eq!(rep.mem_corrected, 2);
    assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * N as f64);
}

#[test]
fn tiny_memory_deltas_below_threshold_are_benign() {
    // A corruption below round-off scale is undetectable by design and
    // harmless: the output error it causes is below the accuracy floor.
    let (out, want, rep) = run_mem(
        Scheme::OnlineMemOpt,
        vec![ScriptedFault::new(Site::InputMemory, 10, FaultKind::AddDelta { re: 1e-15, im: 0.0 })],
    );
    assert_eq!(rep.uncorrectable, 0, "{rep:?}");
    assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * N as f64);
}

#[test]
fn in_place_plan_memory_protection() {
    use ftfft::checksum::{decode, mem_checksum, MemVerdict};
    let n = 2048;
    let x = uniform_signal(n, 11);
    let want = dft_naive(&x, Direction::Forward);
    let plan =
        InPlaceFtPlan::new(n, Direction::Forward, SignalDist::Uniform.component_std_dev(), 3);
    let inj = ScriptedInjector::new(vec![
        ScriptedFault::new(Site::IntermediateMemory, 99, FaultKind::SetValue { re: 2.0, im: 2.0 }),
        ScriptedFault::new(Site::OutputMemory, 1500, FaultKind::AddDelta { re: 5.0, im: 0.0 }),
    ]);
    let mut data = x;
    let mut ws = plan.make_workspace();
    let (rep, pair) = plan.execute(&mut data, &inj, &mut ws, 0, None);
    // Caller-side final MCV repairs the output-region fault.
    let observed = mem_checksum(&data);
    if let MemVerdict::Located { index, delta } = decode(observed, pair, n, 1e-6) {
        data[index] -= delta;
    }
    assert!(rep.mem_corrected >= 1, "{rep:?}");
    assert!(ftfft::numeric::max_abs_diff(&data, &want) < 1e-8 * n as f64);
}

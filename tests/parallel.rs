//! Parallel scheme integration: equivalence with the sequential library,
//! overlap == blocking results, fault recovery across ranks, network model.

use ftfft::prelude::*;

#[test]
fn parallel_equals_sequential_all_schemes() {
    let n = 1 << 12;
    let x = uniform_signal(n, 21);
    let want = fft(&x);
    for scheme in ParallelScheme::ALL {
        for p in [2usize, 4] {
            let plan =
                ParallelFft::new(n, p, scheme, None, SignalDist::Uniform.component_std_dev(), 3);
            let (out, rep) = plan.run(&x, &NoFaults);
            assert!(
                relative_error_inf(&out, &want) < 1e-10,
                "{scheme:?} p={p}: err {}",
                relative_error_inf(&out, &want)
            );
            assert!(rep.is_clean(), "{scheme:?} p={p}: {rep:?}");
        }
    }
}

#[test]
fn overlap_and_blocking_produce_identical_transforms() {
    let n = 1 << 14;
    let x = uniform_signal(n, 5);
    let sigma = SignalDist::Uniform.component_std_dev();
    let blocking = ParallelFft::new(n, 8, ParallelScheme::FtFftw, None, sigma, 3);
    let overlap = ParallelFft::new(n, 8, ParallelScheme::OptFtFftw, None, sigma, 3);
    let (a, _) = blocking.run(&x, &NoFaults);
    let (b, _) = overlap.run(&x, &NoFaults);
    assert_eq!(a, b, "overlap is a scheduling change, not a numeric one");
}

#[test]
fn single_rank_degenerates_to_sequential() {
    let n = 1 << 10;
    let x = uniform_signal(n, 9);
    let want = fft(&x);
    let plan = ParallelFft::new(
        n,
        1,
        ParallelScheme::OptFtFftw,
        None,
        SignalDist::Uniform.component_std_dev(),
        3,
    );
    let (out, rep) = plan.run(&x, &NoFaults);
    assert!(relative_error_inf(&out, &want) < 1e-10);
    assert!(rep.is_clean(), "{rep:?}");
}

#[test]
fn network_model_does_not_change_results() {
    let n = 1 << 10;
    let x = uniform_signal(n, 2);
    let sigma = SignalDist::Uniform.component_std_dev();
    let plain = ParallelFft::new(n, 4, ParallelScheme::OptFtFftw, None, sigma, 3);
    let modeled =
        ParallelFft::new(n, 4, ParallelScheme::OptFtFftw, Some(NetworkModel::cluster()), sigma, 3);
    let (a, _) = plain.run(&x, &NoFaults);
    let (b, _) = modeled.run(&x, &NoFaults);
    assert_eq!(a, b);
}

#[test]
fn comm_corruption_on_each_transpose_phase_is_repaired() {
    let n = 1 << 12;
    let p = 4;
    let x = uniform_signal(n, 13);
    let want = fft(&x);
    let sigma = SignalDist::Uniform.component_std_dev();
    for phase in [1u8, 2, 3] {
        let plan = ParallelFft::new(n, p, ParallelScheme::FtFftw, None, sigma, 3);
        let inj = ScriptedInjector::new(vec![ScriptedFault::new(
            Site::CommBlock { from: 1, to: 3, phase },
            20,
            FaultKind::AddDelta { re: 4.0, im: -4.0 },
        )]);
        let (out, rep) = plan.run(&x, &inj);
        assert_eq!(inj.log().len(), 1, "phase {phase}");
        assert_eq!(rep.comm_corrected, 1, "phase {phase}: {rep:?}");
        assert!(relative_error_inf(&out, &want) < 1e-10, "phase {phase}");
    }
}

#[test]
fn fft2_faults_inside_ranks_recovered() {
    let n = 1 << 12;
    let p = 4;
    let x = uniform_signal(n, 17);
    let want = fft(&x);
    let sigma = SignalDist::Uniform.component_std_dev();
    let plan = ParallelFft::new(n, p, ParallelScheme::OptFtFftw, None, sigma, 3);
    let inj = ScriptedInjector::new(vec![
        // Middle DMR layer of FFT2 on rank 0.
        ScriptedFault::new(
            Site::SubFftCompute { part: Part::Middle, index: 2 },
            4,
            FaultKind::SetValue { re: 3.0, im: 3.0 },
        )
        .on_rank(0),
        // Layer-C compute fault on rank 3.
        ScriptedFault::new(
            Site::SubFftCompute { part: Part::Second, index: 6 },
            2,
            FaultKind::AddDelta { re: 1e-2, im: 0.0 },
        )
        .on_rank(3),
    ]);
    let (out, rep) = plan.run(&x, &inj);
    assert!(rep.dmr_votes >= 1, "{rep:?}");
    assert!(rep.comp_detected >= 1, "{rep:?}");
    assert_eq!(rep.uncorrectable, 0, "{rep:?}");
    assert!(relative_error_inf(&out, &want) < 1e-10);
}

#[test]
fn fault_storm_all_ranks_all_phases() {
    let n = 1 << 12;
    let p = 4;
    let x = uniform_signal(n, 23);
    let want = fft(&x);
    let sigma = SignalDist::Uniform.component_std_dev();
    let plan = ParallelFft::new(n, p, ParallelScheme::OptFtFftw, None, sigma, 3);
    let mut faults = Vec::new();
    for r in 0..p {
        faults.push(
            ScriptedFault::new(
                Site::InputMemory,
                31 * (r + 1),
                FaultKind::SetValue { re: 2.0, im: 0.0 },
            )
            .on_rank(r),
        );
        faults.push(
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::First, index: r },
                r,
                FaultKind::AddDelta { re: 5e-3, im: 0.0 },
            )
            .on_rank(r),
        );
        faults.push(ScriptedFault::new(
            Site::CommBlock { from: r, to: (r + 1) % p, phase: 2 },
            3,
            FaultKind::AddDelta { re: 1.0, im: 1.0 },
        ));
    }
    let inj = ScriptedInjector::new(faults);
    let (out, rep) = plan.run(&x, &inj);
    assert_eq!(rep.uncorrectable, 0, "{rep:?}");
    assert_eq!(inj.unfired(), Vec::<usize>::new());
    assert!(relative_error_inf(&out, &want) < 1e-10);
}

#[test]
fn weak_scaling_shapes_hold_on_tiny_sizes() {
    // Smoke-check the harness path: time grows with N at fixed p and the
    // protected scheme is within a sane factor of plain.
    use std::time::Instant;
    let p = 4;
    let sigma = SignalDist::Uniform.component_std_dev();
    let mut prev = 0.0;
    for log2n in [12u32, 14] {
        let n = 1 << log2n;
        let x = uniform_signal(n, 1);
        let plan = ParallelFft::new(n, p, ParallelScheme::OptFtFftw, None, sigma, 3);
        let t0 = Instant::now();
        let _ = plan.run(&x, &NoFaults);
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.0);
        if prev > 0.0 {
            assert!(dt > prev * 0.5, "time should not collapse as N grows");
        }
        prev = dt;
    }
}

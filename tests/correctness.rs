//! Cross-crate correctness: every scheme × assorted sizes against the
//! naive DFT oracle, both directions, round trips.

use ftfft::prelude::*;

fn reference(n: usize, seed: u64, dir: Direction) -> (Vec<Complex64>, Vec<Complex64>) {
    let x = uniform_signal(n, seed);
    let want = dft_naive(&x, dir);
    (x, want)
}

#[test]
fn all_schemes_match_naive_dft_power_of_two() {
    for n in [64usize, 256, 1024, 4096] {
        let (x, want) = reference(n, 5, Direction::Forward);
        for scheme in Scheme::ALL {
            let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(scheme));
            let mut xin = x.clone();
            let mut out = vec![Complex64::ZERO; n];
            let rep = plan.execute_alloc(&mut xin, &mut out, &NoFaults);
            let err = ftfft::numeric::max_abs_diff(&out, &want);
            assert!(err < 1e-8 * n as f64, "{scheme:?} n={n}: err={err}");
            assert_eq!(rep.uncorrectable, 0, "{scheme:?} n={n}");
            assert!(rep.is_clean(), "{scheme:?} n={n}: {rep:?}");
        }
    }
}

#[test]
fn schemes_match_naive_dft_non_power_sizes() {
    // Composite sizes exercise the mixed-radix kernels under protection.
    // (Sizes divisible by 3 hit the degenerate rA case; the checksum
    // encoding itself is only fully effective for 3 ∤ n — the paper's
    // power-of-two regime. 100 = 10·10, 196 = 14·14, 484 = 22·22.)
    for n in [100usize, 196, 400, 484] {
        let (x, want) = reference(n, 9, Direction::Forward);
        for scheme in [Scheme::Offline, Scheme::OnlineCompOpt, Scheme::OnlineMemOpt] {
            let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(scheme));
            let mut xin = x.clone();
            let mut out = vec![Complex64::ZERO; n];
            let rep = plan.execute_alloc(&mut xin, &mut out, &NoFaults);
            let err = ftfft::numeric::max_abs_diff(&out, &want);
            assert!(err < 1e-8 * n as f64, "{scheme:?} n={n}: err={err}");
            assert!(rep.is_clean(), "{scheme:?} n={n}: {rep:?}");
        }
    }
}

#[test]
fn inverse_direction_round_trip_through_protected_plans() {
    let n = 2048;
    let x = uniform_signal(n, 3);
    let fwd = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
    // The inverse transform's input is a forward-FFT output, whose
    // components are √N larger than the original signal — the threshold
    // model needs the actual input scale.
    let sigma_spec = SignalDist::Uniform.component_std_dev() * (n as f64).sqrt();
    let inv = FtFftPlan::new(
        n,
        Direction::Inverse,
        FtConfig::new(Scheme::OnlineMemOpt).with_sigma0(sigma_spec),
    );
    let mut a = x.clone();
    let mut mid = vec![Complex64::ZERO; n];
    assert!(fwd.execute_alloc(&mut a, &mut mid, &NoFaults).is_clean());
    let mut back = vec![Complex64::ZERO; n];
    assert!(inv.execute_alloc(&mut mid, &mut back, &NoFaults).is_clean());
    normalize(&mut back);
    assert!(ftfft::numeric::max_abs_diff(&back, &x) < 1e-10);
}

#[test]
fn explicit_split_overrides_are_respected_and_correct() {
    let n = 4096;
    let (x, want) = reference(n, 8, Direction::Forward);
    for k in [2usize, 16, 64, 256] {
        let cfg = FtConfig::new(Scheme::OnlineMemOpt).with_split_k(k);
        let plan = FtFftPlan::new(n, Direction::Forward, cfg);
        assert_eq!(plan.two().k(), k);
        let mut xin = x.clone();
        let mut out = vec![Complex64::ZERO; n];
        let rep = plan.execute_alloc(&mut xin, &mut out, &NoFaults);
        assert!(rep.is_clean(), "k={k}: {rep:?}");
        assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * n as f64, "k={k}");
    }
}

#[test]
fn normal_distribution_inputs_also_clean() {
    let n = 1024;
    let x = normal_signal(n, 4);
    let want = dft_naive(&x, Direction::Forward);
    let cfg =
        FtConfig::new(Scheme::OnlineMemOpt).with_sigma0(SignalDist::Normal.component_std_dev());
    let plan = FtFftPlan::new(n, Direction::Forward, cfg);
    let mut xin = x.clone();
    let mut out = vec![Complex64::ZERO; n];
    let rep = plan.execute_alloc(&mut xin, &mut out, &NoFaults);
    assert!(rep.is_clean(), "{rep:?}");
    assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * n as f64);
}

#[test]
fn repeated_executions_reuse_workspace_deterministically() {
    let n = 512;
    let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
    let mut ws = plan.make_workspace();
    let x = uniform_signal(n, 6);
    let mut out1 = vec![Complex64::ZERO; n];
    let mut out2 = vec![Complex64::ZERO; n];
    let mut a = x.clone();
    plan.execute(&mut a, &mut out1, &NoFaults, &mut ws);
    let mut b = x.clone();
    plan.execute(&mut b, &mut out2, &NoFaults, &mut ws);
    assert_eq!(out1, out2, "workspace reuse must not change results");
}

use ftfft::numeric::normal_signal;

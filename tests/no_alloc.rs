//! No-allocation assertion for the hot path.
//!
//! A counting global allocator verifies that, once a plan and its
//! workspace exist, repeated clean `execute` calls allocate **nothing** —
//! across every scheme and across sub-plan kinds (power-of-two, mixed-
//! radix, and Bluestein sub-FFTs), and for the plain `FftPlan` paths.
//! Recovery paths (a detected fault's tie-break vote) may allocate; the
//! clean path must not.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ftfft::fft::Layout as DataLayout;
use ftfft::prelude::*;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates everything to `System`, only adding a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counter is process-global, so the tests in this binary must not
/// overlap at all (the harness runs tests concurrently on multi-core
/// machines, and even a sibling test's *setup* allocations would pollute
/// a measurement window): every test body below holds this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    // Pin the serial execution strategy for every plan this binary
    // builds: the no-allocation contract covers the serial schedule,
    // while the multi-worker parallel DIT spawns scoped threads per
    // execute by design (a forced `FTFFT_STRATEGY=parallel` CI leg
    // would otherwise route these plans through it). The explicit
    // `FftPlan::new_parallel(_, _, 1)` test below bypasses the planner
    // heuristic, so it is unaffected by this pin.
    force_strategy(Some(Strategy::Serial));
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` several times and returns the *minimum* allocation count of
/// any run — a deterministic zero for a truly allocation-free `f`, while
/// immune to one-off pollution from harness-internal threads.
fn alloc_count(mut f: impl FnMut()) -> usize {
    (0..5)
        .map(|_| {
            let before = ALLOCS.load(Ordering::Relaxed);
            f();
            ALLOCS.load(Ordering::Relaxed) - before
        })
        .min()
        .unwrap()
}

/// Sizes covering every sub-plan kind the two-layer split produces:
/// 1024 = 32×32 (power-of-two kernels), 100 = 10×10 (mixed-radix),
/// 202 = 2×101 (Bluestein inner sub-plan).
const SIZES: [usize; 3] = [1024, 100, 202];

#[test]
fn protected_execute_is_allocation_free_after_warmup() {
    let _serial = serialized();
    for scheme in Scheme::ALL {
        for n in SIZES {
            let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(scheme));
            let mut ws = plan.make_workspace();
            let x = uniform_signal(n, 7);
            let mut xin = x.clone();
            let mut out = vec![Complex64::ZERO; n];
            // Warm-up: first call may lazily initialize (SIMD dispatch
            // decision reads the environment, etc.).
            plan.execute(&mut xin, &mut out, &NoFaults, &mut ws);
            let count = alloc_count(|| {
                for _ in 0..3 {
                    xin.copy_from_slice(&x);
                    let rep = plan.execute(&mut xin, &mut out, &NoFaults, &mut ws);
                    assert_eq!(rep.uncorrectable, 0);
                }
            });
            assert_eq!(count, 0, "{scheme:?} n={n}: {count} allocations in hot path");
        }
    }
}

#[test]
fn plain_fft_plan_execute_is_allocation_free() {
    let _serial = serialized();
    // 97 is prime → Bluestein; 360 → mixed-radix; 4096 → pow2.
    for n in [97usize, 360, 4096] {
        let plan = FftPlan::new(n, Direction::Forward);
        let x = uniform_signal(n, 3);
        let mut dst = vec![Complex64::ZERO; n];
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        plan.execute(&x, &mut dst, &mut scratch);
        let count = alloc_count(|| {
            for _ in 0..3 {
                plan.execute(&x, &mut dst, &mut scratch);
            }
        });
        assert_eq!(count, 0, "FftPlan n={n} ({}): {count} allocations", plan.kernel_name());
    }
}

#[test]
fn parallel_plan_single_worker_path_is_allocation_free() {
    let _serial = serialized();
    // The two-halves parallel DIT at `threads == 1` runs the inline
    // (non-spawning) schedule entirely on the caller's scratch, so it
    // must be allocation-free like any serial plan. Worker counts > 1
    // spawn scoped threads per execute (which allocate stacks by design)
    // and are deliberately outside this assertion.
    let n = 1 << 12;
    let plan = FftPlan::new_parallel(n, Direction::Forward, 1);
    let x = uniform_signal(n, 13);
    let mut dst = vec![Complex64::ZERO; n];
    let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
    plan.execute(&x, &mut dst, &mut scratch);
    let count = alloc_count(|| {
        for _ in 0..3 {
            plan.execute(&x, &mut dst, &mut scratch);
        }
    });
    assert_eq!(count, 0, "parallel DIT (threads=1): {count} allocations in hot path");

    // In-place flavor shares the same inline path.
    let mut data = x.clone();
    plan.execute_inplace(&mut data, &mut scratch);
    let count = alloc_count(|| {
        for _ in 0..3 {
            plan.execute_inplace(&mut data, &mut scratch);
        }
    });
    assert_eq!(count, 0, "parallel DIT in-place (threads=1): {count} allocations");
}

#[test]
fn soa_layout_plans_are_allocation_free() {
    let _serial = serialized();
    // Plain plans pinned to the split-complex engine: the deinterleave /
    // bit-reversal planes are carved from the caller's complex scratch,
    // so repeated executes must allocate nothing.
    for kernel in Pow2Kernel::ALL {
        let n = 1 << 10;
        let plan = FftPlan::new_with_kernel_layout(n, Direction::Forward, kernel, DataLayout::Soa);
        assert!(plan.supports_split());
        let x = uniform_signal(n, 11);
        let mut dst = vec![Complex64::ZERO; n];
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        plan.execute(&x, &mut dst, &mut scratch);
        let count = alloc_count(|| {
            for _ in 0..3 {
                plan.execute(&x, &mut dst, &mut scratch);
            }
        });
        assert_eq!(count, 0, "SoA FftPlan ({}): {count} allocations", plan.kernel_name());
    }

    // Protected execution with SoA sub-plans: the split gather planes
    // come out of the pre-sized workspace buffers (buf2 + fft scratch),
    // so the clean path stays allocation-free end to end.
    force_layout(Some(DataLayout::Soa));
    let n = 1024;
    let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
    force_layout(None);
    assert!(plan.two().inner_plan().supports_split(), "sub-plan should be SoA under forcing");
    let mut ws = plan.make_workspace();
    let x = uniform_signal(n, 12);
    let mut xin = x.clone();
    let mut out = vec![Complex64::ZERO; n];
    plan.execute(&mut xin, &mut out, &NoFaults, &mut ws);
    let count = alloc_count(|| {
        for _ in 0..3 {
            xin.copy_from_slice(&x);
            let rep = plan.execute(&mut xin, &mut out, &NoFaults, &mut ws);
            assert_eq!(rep.uncorrectable, 0);
        }
    });
    assert_eq!(count, 0, "SoA protected execute: {count} allocations in hot path");
}

#[test]
fn real_plan_forward_is_allocation_free() {
    let _serial = serialized();
    let n = 512;
    let plan = RealFtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
    let mut ws = plan.make_workspace();
    let x: Vec<f64> = uniform_signal(n, 2).iter().map(|z| z.re).collect();
    let mut spec = vec![Complex64::ZERO; plan.spectrum_len()];
    plan.forward(&x, &mut spec, &NoFaults, &mut ws);
    let count = alloc_count(|| {
        for _ in 0..3 {
            let rep = plan.forward(&x, &mut spec, &NoFaults, &mut ws);
            assert_eq!(rep.uncorrectable, 0);
        }
    });
    assert_eq!(count, 0, "RealFtFftPlan::forward: {count} allocations in hot path");
}

#[test]
fn streaming_convolver_hot_loop_is_allocation_free() {
    let _serial = serialized();
    let taps: Vec<f64> = uniform_signal(9, 3).iter().map(|z| z.re).collect();
    let mut conv =
        StreamingConvolver::with_fft_size(&taps, 64, FtConfig::new(Scheme::OnlineMemOpt));
    let x: Vec<f64> = uniform_signal(10 * conv.hop(), 4).iter().map(|z| z.re).collect();
    let mut out = vec![0.0; x.len() + conv.hop()];
    // Warm-up covers lazy SIMD dispatch and the first batch flush.
    conv.process_into(&x, &mut out, &NoFaults);
    let count = alloc_count(|| {
        // Mixed chunk sizes: partial fills, batch flushes, ring wraps.
        let n1 = conv.process_into(&x[..37], &mut out, &NoFaults);
        let n2 = conv.process_into(&x[37..], &mut out[n1..], &NoFaults);
        // x.len() is a hop multiple and the ring is drained after each
        // pass, so every sample comes back out within the measurement.
        assert_eq!(n1 + n2, x.len());
    });
    assert_eq!(count, 0, "StreamingConvolver::process_into: {count} allocations in hot loop");
}

#[test]
fn stft_analysis_and_synthesis_are_allocation_free() {
    let _serial = serialized();
    let plan = StftPlan::new(256, 128, Window::Hann, FtConfig::new(Scheme::OnlineMemOpt));
    let len = plan.signal_len(9);
    let x: Vec<f64> = uniform_signal(len, 5).iter().map(|z| z.re).collect();
    let mut ws = plan.make_workspace();
    let mut spec = vec![Complex64::ZERO; plan.num_frames(len) * plan.bins()];
    let mut back = vec![0.0; len];
    plan.analyze_into(&x, &mut spec, &NoFaults, &mut ws);
    plan.synthesize_into(&spec, &mut back, &NoFaults, &mut ws);
    let count = alloc_count(|| {
        let a = plan.analyze_into(&x, &mut spec, &NoFaults, &mut ws);
        let s = plan.synthesize_into(&spec, &mut back, &NoFaults, &mut ws);
        assert!(a.is_clean() && s.is_clean());
    });
    assert_eq!(count, 0, "StftPlan analyze+synthesize: {count} allocations in hot loop");
}

#[test]
fn batched_execute_is_allocation_free() {
    let _serial = serialized();
    let n = 256;
    let batch = 4;
    let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
    let mut ws = plan.make_workspace();
    let src = uniform_signal(n * batch, 5);
    let mut xs = src.clone();
    let mut outs = vec![Complex64::ZERO; n * batch];
    plan.execute_batch(&mut xs, &mut outs, &NoFaults, &mut ws);
    let count = alloc_count(|| {
        xs.copy_from_slice(&src);
        let rep = plan.execute_batch(&mut xs, &mut outs, &NoFaults, &mut ws);
        assert_eq!(rep.uncorrectable, 0);
    });
    assert_eq!(count, 0, "execute_batch: {count} allocations in hot path");
}

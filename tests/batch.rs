//! Batch-level two-sided checksum scheme: clean-path bitwise identity,
//! scripted fault campaigns with per-member localization, false-positive
//! behaviour, per-member report attribution, and the service-layer joint
//! dispatch.

use std::sync::Arc;

use ftfft::prelude::*;

/// Fault-free reference: the outputs the per-transform Opt-Online scheme
/// produces for each member (bitwise identical to every other scheme's
/// clean output, including the plain FFT the batch path runs).
fn reference_outputs(n: usize, members: &[Vec<Complex64>]) -> Vec<Vec<Complex64>> {
    let plan = FtFftPlan::from_spec(&PlanSpec::builder(n).scheme(Scheme::OnlineCompOpt).build());
    let mut ws = plan.make_workspace();
    members
        .iter()
        .map(|m| {
            let mut x = m.clone();
            let mut out = vec![Complex64::ZERO; n];
            let rep = plan.execute(&mut x, &mut out, &NoFaults, &mut ws);
            assert!(rep.is_clean());
            out
        })
        .collect()
}

fn batch_plan(n: usize) -> FtFftPlan {
    FtFftPlan::from_spec(&PlanSpec::builder(n).scheme(Scheme::BatchChecksum).build())
}

fn signals(n: usize, b: usize, seed: u64) -> Vec<Vec<Complex64>> {
    (0..b).map(|i| uniform_signal(n, seed + i as u64)).collect()
}

/// Runs the joint batch executor over `members` with per-member scripted
/// injectors (`None` = fault free), returning outputs and reports.
fn run_members(
    plan: &FtFftPlan,
    members: &[Vec<Complex64>],
    injectors: &[&dyn FaultInjector],
) -> (Vec<Vec<Complex64>>, Vec<FtReport>) {
    let n = plan.n();
    let b = members.len();
    let mut ws = plan.make_workspace();
    let mut outputs = vec![vec![Complex64::ZERO; n]; b];
    let mut reports = vec![FtReport::new(); b];
    {
        let xs: Vec<&[Complex64]> = members.iter().map(|m| m.as_slice()).collect();
        let mut outs: Vec<&mut [Complex64]> =
            outputs.iter_mut().map(|o| o.as_mut_slice()).collect();
        plan.execute_batch_members(&xs, &mut outs, injectors, &mut reports, &mut ws);
    }
    (outputs, reports)
}

#[test]
fn clean_batch_is_bitwise_identical_to_opt_online_across_sizes() {
    let n = 256;
    for b in [1usize, 2, 8, 32] {
        let members = signals(n, b, 11);
        let want = reference_outputs(n, &members);
        let plan = batch_plan(n);
        let nofaults = NoFaults;
        let injectors: [&dyn FaultInjector; 1] = [&nofaults];
        let (outputs, reports) = run_members(&plan, &members, &injectors);
        for j in 0..b {
            assert_eq!(outputs[j], want[j], "B={b} member {j} must be bitwise identical");
            assert!(reports[j].is_clean(), "B={b} member {j}: {:?}", reports[j]);
            // Lazy localization: a clean batch pays exactly the one
            // side-1 detection check, never the side-2 transform.
            assert_eq!(reports[j].checks, 1, "clean batch must run only the side-1 check");
        }
    }
}

#[test]
fn single_member_fault_is_localized_repaired_and_bitwise_clean() {
    let (n, b) = (256, 8);
    let members = signals(n, b, 23);
    let want = reference_outputs(n, &members);
    let plan = batch_plan(n);
    for victim in [0usize, 3, 7] {
        let scripted: Vec<ScriptedInjector> = (0..b)
            .map(|j| {
                let faults = if j == victim {
                    vec![ScriptedFault::new(
                        Site::BatchMemberOutput { index: victim },
                        17,
                        FaultKind::AddDelta { re: 1.0, im: -0.5 },
                    )]
                } else {
                    vec![]
                };
                ScriptedInjector::new(faults)
            })
            .collect();
        let injectors: Vec<&dyn FaultInjector> =
            scripted.iter().map(|s| s as &dyn FaultInjector).collect();
        let (outputs, reports) = run_members(&plan, &members, &injectors);
        assert!(scripted[victim].exhausted(), "the scripted fault must fire");
        for j in 0..b {
            assert_eq!(outputs[j], want[j], "victim {victim}, member {j}");
            if j == victim {
                assert_eq!(reports[j].comp_detected, 1, "detection billed to member {victim}");
                assert_eq!(reports[j].full_recomputed, 1, "repair billed to member {victim}");
                assert_eq!(reports[j].uncorrectable, 0);
            } else {
                assert!(reports[j].is_clean(), "member {j} must not be billed: {:?}", reports[j]);
            }
        }
    }
}

#[test]
fn two_member_faults_at_distinct_bins_both_localized() {
    let (n, b) = (256, 8);
    let members = signals(n, b, 31);
    let want = reference_outputs(n, &members);
    let plan = batch_plan(n);
    let victims = [(1usize, 5usize), (4, 200)];
    let scripted: Vec<ScriptedInjector> = (0..b)
        .map(|j| {
            let faults = victims
                .iter()
                .filter(|(v, _)| *v == j)
                .map(|(v, bin)| {
                    ScriptedFault::new(
                        Site::BatchMemberOutput { index: *v },
                        *bin,
                        FaultKind::AddDelta { re: 2.0, im: 1.0 },
                    )
                })
                .collect();
            ScriptedInjector::new(faults)
        })
        .collect();
    let injectors: Vec<&dyn FaultInjector> =
        scripted.iter().map(|s| s as &dyn FaultInjector).collect();
    let (outputs, reports) = run_members(&plan, &members, &injectors);
    for j in 0..b {
        assert_eq!(outputs[j], want[j], "member {j}");
        let faulted = victims.iter().any(|(v, _)| *v == j);
        if faulted {
            assert_eq!(reports[j].comp_detected, 1, "member {j}");
            assert_eq!(reports[j].full_recomputed, 1, "member {j}");
        } else {
            assert!(reports[j].is_clean(), "member {j}: {:?}", reports[j]);
        }
    }
}

#[test]
fn checksum_side_faults_touch_no_member_and_are_charged_to_the_leader() {
    let (n, b) = (256, 4);
    let members = signals(n, b, 47);
    let want = reference_outputs(n, &members);
    let plan = batch_plan(n);
    // Side-1 (detection) faults: flagged by the side-1 scan, localized by
    // the lazily-built side 2, repaired by redoing just the side-1
    // combine + FFT, and charged to the batch leader.
    for site in [Site::BatchCombine { side: 1 }, Site::BatchChecksumFft { side: 1 }] {
        let scripted = ScriptedInjector::new(vec![ScriptedFault::new(
            site,
            9,
            FaultKind::AddDelta { re: 3.0, im: 0.0 },
        )]);
        let injectors: [&dyn FaultInjector; 1] = [&scripted];
        let (outputs, reports) = run_members(&plan, &members, &injectors);
        assert!(scripted.exhausted(), "{site:?} must fire");
        for j in 0..b {
            assert_eq!(outputs[j], want[j], "{site:?} member {j}");
        }
        assert_eq!(reports[0].comp_detected, 1, "{site:?} charged to the leader");
        assert_eq!(reports[0].subfft_recomputed, 1, "{site:?} is a checksum recompute");
        assert_eq!(reports[0].full_recomputed, 0, "{site:?}: no member recomputed");
        for (j, r) in reports.iter().enumerate().skip(1) {
            assert!(r.is_clean(), "{site:?} member {j}: {r:?}");
        }
    }
    // Side-2 (localization) faults alone: the lazy side is never built on
    // a clean batch, so the fault has nothing to strike — outputs and
    // reports stay clean and the scripted fault never fires.
    for site in [Site::BatchCombine { side: 2 }, Site::BatchChecksumFft { side: 2 }] {
        let scripted = ScriptedInjector::new(vec![ScriptedFault::new(
            site,
            9,
            FaultKind::AddDelta { re: 3.0, im: 0.0 },
        )]);
        let injectors: [&dyn FaultInjector; 1] = [&scripted];
        let (outputs, reports) = run_members(&plan, &members, &injectors);
        assert!(!scripted.exhausted(), "{site:?} must stay dormant on a clean batch");
        for j in 0..b {
            assert_eq!(outputs[j], want[j], "{site:?} member {j}");
            assert!(reports[j].is_clean(), "{site:?} member {j}: {:?}", reports[j]);
        }
    }
}

#[test]
fn side2_fault_during_localization_degrades_to_ambiguous_repair() {
    // A member fault forces the lazy side-2 build, and a scripted fault
    // strikes that build: the evidence (member bin moved on both sides,
    // another bin moved on side 2 alone) fits no single-member story, so
    // the verdict is Ambiguous — every member is recomputed under the
    // self-verifying repair plan and both checksum sides rebuilt, and the
    // outputs still come back bitwise identical to the fault-free run.
    let (n, b) = (256, 4);
    let members = signals(n, b, 59);
    let want = reference_outputs(n, &members);
    let plan = batch_plan(n);
    let scripted = ScriptedInjector::new(vec![
        ScriptedFault::new(
            Site::BatchMemberOutput { index: 1 },
            30,
            FaultKind::AddDelta { re: 2.0, im: 0.0 },
        ),
        ScriptedFault::new(
            Site::BatchChecksumFft { side: 2 },
            77,
            FaultKind::AddDelta { re: 3.0, im: 0.0 },
        ),
    ]);
    let injectors: [&dyn FaultInjector; 1] = [&scripted];
    let (outputs, reports) = run_members(&plan, &members, &injectors);
    assert!(scripted.exhausted(), "both scripted faults must fire");
    for j in 0..b {
        assert_eq!(outputs[j], want[j], "member {j}");
        assert_eq!(reports[j].full_recomputed, 1, "ambiguity recomputes every member ({j})");
        assert_eq!(reports[j].uncorrectable, 0, "member {j}");
    }
}

#[test]
fn colliding_same_bin_faults_are_ambiguous_and_still_repaired() {
    let (n, b) = (256, 4);
    let members = signals(n, b, 53);
    let want = reference_outputs(n, &members);
    let plan = batch_plan(n);
    // Members 0 and 2 struck at the same output bin with incommensurate
    // deltas: the two-equation residual system is underdetermined, so the
    // verdict must be Ambiguous and every member recomputed.
    let scripted: Vec<ScriptedInjector> = (0..b)
        .map(|j| {
            let faults = match j {
                0 => vec![ScriptedFault::new(
                    Site::BatchMemberOutput { index: 0 },
                    7,
                    FaultKind::AddDelta { re: 1.0, im: 0.0 },
                )],
                2 => vec![ScriptedFault::new(
                    Site::BatchMemberOutput { index: 2 },
                    7,
                    FaultKind::AddDelta { re: 0.6, im: 0.3 },
                )],
                _ => vec![],
            };
            ScriptedInjector::new(faults)
        })
        .collect();
    let injectors: Vec<&dyn FaultInjector> =
        scripted.iter().map(|s| s as &dyn FaultInjector).collect();
    let (outputs, reports) = run_members(&plan, &members, &injectors);
    for j in 0..b {
        assert_eq!(outputs[j], want[j], "member {j}");
        assert_eq!(reports[j].full_recomputed, 1, "ambiguity recomputes every member ({j})");
        assert_eq!(reports[j].uncorrectable, 0, "member {j}");
    }
}

#[test]
fn clean_batches_never_false_positive() {
    // 20 batches across two sizes and both signal shapes: no clean batch
    // may trip the two-sided test (threshold calibration property).
    for n in [256usize, 1024] {
        let plan = batch_plan(n);
        let nofaults = NoFaults;
        let injectors: [&dyn FaultInjector; 1] = [&nofaults];
        for round in 0..10u64 {
            let members: Vec<Vec<Complex64>> = (0..8)
                .map(|i| {
                    if (i + round as usize).is_multiple_of(2) {
                        uniform_signal(n, 1000 + round * 8 + i as u64)
                    } else {
                        normal_signal(n, 2000 + round * 8 + i as u64)
                    }
                })
                .collect();
            let (_, reports) = run_members(&plan, &members, &injectors);
            for (j, r) in reports.iter().enumerate() {
                assert!(r.is_clean(), "n={n} round={round} member {j}: {r:?}");
                // The batch residual is a batch-level, composition-
                // dependent quantity and is deliberately not attributed
                // to per-member reports (they must stay bitwise stable
                // across coalescing choices).
                assert_eq!(r.max_ok_residual_part1, 0.0, "member {j} residual attribution");
            }
        }
    }
}

#[test]
fn execute_and_execute_batch_merge_member_attribution() {
    // The contiguous execute_batch API must agree with the per-member
    // API: same outputs, and its merged report must equal the manual
    // merge of the per-member reports (satellite: FtReport::merge
    // attribution for batch executors).
    let (n, b) = (256, 8);
    let members = signals(n, b, 61);
    let plan = batch_plan(n);
    let fault = || {
        ScriptedInjector::new(vec![ScriptedFault::new(
            Site::BatchMemberOutput { index: 2 },
            40,
            FaultKind::AddDelta { re: 1.5, im: 0.0 },
        )])
    };

    let shared = fault();
    let injectors: [&dyn FaultInjector; 1] = [&shared];
    let (outputs, reports) = run_members(&plan, &members, &injectors);
    let mut manual = FtReport::new();
    for r in &reports {
        manual.merge(r);
    }

    let mut xs: Vec<Complex64> = members.iter().flatten().copied().collect();
    let mut outs = vec![Complex64::ZERO; n * b];
    let mut ws = plan.make_workspace();
    let merged = plan.execute_batch(&mut xs, &mut outs, &fault(), &mut ws);
    assert_eq!(merged, manual, "execute_batch must merge exactly the per-member reports");
    let flat: Vec<Complex64> = outputs.iter().flatten().copied().collect();
    assert_eq!(outs, flat, "contiguous and per-member APIs must agree bitwise");
    assert_eq!(merged.comp_detected, 1);
    assert_eq!(merged.full_recomputed, 1);

    // And a single-member execute is a 1-member batch.
    let mut x1 = members[0].clone();
    let mut o1 = vec![Complex64::ZERO; n];
    let rep = plan.execute(&mut x1, &mut o1, &NoFaults, &mut ws);
    assert!(rep.is_clean());
    assert_eq!(o1, outputs[0], "B=1 execute must match the batch member output");
}

#[test]
fn service_joint_dispatch_is_bitwise_clean_under_member_fault() {
    let n = 1024usize;
    let frames = 8usize; // ≥ batch_break_even(1024) = 4 → joint path
    assert!(frames >= batch_break_even(n));
    let members = signals(n, frames, 71);
    let want = reference_outputs(n, &members);
    let want_flat: Vec<Complex64> = want.iter().flatten().copied().collect();
    let input: Vec<Complex64> = members.iter().flatten().copied().collect();
    let spec = PlanSpec::builder(n).scheme(Scheme::BatchChecksum).build();

    let svc = FftService::new(ServiceConfig::default().with_workers(1));
    // Clean request first: joint path, bitwise-identical output.
    let resp = svc.submit("clean", &spec, input.clone()).wait();
    assert_eq!(resp.output, want_flat, "clean joint dispatch must be bitwise identical");
    assert!(resp.report.is_clean());

    // Faulted member 5 via this request's own injector: repaired output
    // must be bitwise identical to the fault-free run, and the report
    // must carry the detection.
    let chaos: Arc<ScriptedInjector> = Arc::new(ScriptedInjector::new(vec![ScriptedFault::new(
        Site::BatchMemberOutput { index: 5 },
        100,
        FaultKind::AddDelta { re: 2.0, im: 2.0 },
    )]));
    let resp = svc.submit_injected("faulty", &spec, input.clone(), chaos.clone()).wait();
    assert!(chaos.exhausted(), "scripted member fault must fire in the joint path");
    assert_eq!(resp.output, want_flat, "repaired joint dispatch must be bitwise identical");
    assert_eq!(resp.report.comp_detected, 1);
    assert_eq!(resp.report.full_recomputed, 1);
    assert_eq!(resp.report.uncorrectable, 0);

    // A single-frame request sits under break-even → per-transform
    // fallback, still bitwise identical.
    let resp = svc.submit("small", &spec, members[0].clone()).wait();
    assert_eq!(resp.output, want[0]);

    svc.quiesce();
    let stats = svc.stats();
    assert_eq!(stats.batch_protected, 2, "two requests through the joint path");
    assert_eq!(stats.batch_fallback, 1, "one request under break-even");
    assert_eq!(stats.failed, 0);
}

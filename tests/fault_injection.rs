//! End-to-end computational fault campaigns: every injection site, every
//! scheme that claims to cover it, with injector-log/report cross-checks.

use ftfft::prelude::*;

const N: usize = 1024;

fn run(
    scheme: Scheme,
    faults: Vec<ScriptedFault>,
) -> (Vec<Complex64>, Vec<Complex64>, FtReport, ScriptedInjector) {
    let x = uniform_signal(N, 77);
    let want = dft_naive(&x, Direction::Forward);
    let plan = FtFftPlan::new(N, Direction::Forward, FtConfig::new(scheme));
    let inj = ScriptedInjector::new(faults);
    let mut xin = x;
    let mut out = vec![Complex64::ZERO; N];
    let rep = plan.execute_alloc(&mut xin, &mut out, &inj);
    (out, want, rep, inj)
}

#[test]
fn every_first_part_subfft_index_is_protected() {
    let plan = FtFftPlan::new(N, Direction::Forward, FtConfig::new(Scheme::OnlineCompOpt));
    let k = plan.two().k();
    for index in (0..k).step_by(7) {
        let (out, want, rep, inj) = run(
            Scheme::OnlineCompOpt,
            vec![ScriptedFault::new(
                Site::SubFftCompute { part: Part::First, index },
                index % 13,
                FaultKind::AddDelta { re: 1e-3, im: -1e-3 },
            )],
        );
        assert_eq!(inj.log().len(), 1, "index {index} never injected");
        assert_eq!(rep.comp_detected, 1, "index {index}: {rep:?}");
        assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * N as f64, "index {index}");
    }
}

#[test]
fn every_second_part_subfft_index_is_protected() {
    let plan = FtFftPlan::new(N, Direction::Forward, FtConfig::new(Scheme::OnlineCompOpt));
    let m = plan.two().m();
    for index in (0..m).step_by(5) {
        let (out, want, rep, inj) = run(
            Scheme::OnlineCompOpt,
            vec![ScriptedFault::new(
                Site::SubFftCompute { part: Part::Second, index },
                index % 17,
                FaultKind::AddDelta { re: 0.0, im: 2e-3 },
            )],
        );
        assert_eq!(inj.log().len(), 1);
        assert_eq!(rep.comp_detected, 1, "index {index}: {rep:?}");
        assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * N as f64);
    }
}

#[test]
fn online_recovery_is_local_offline_recovery_is_global() {
    // The headline claim: one fault costs the online scheme one sub-FFT,
    // the offline scheme the whole transform.
    let (out, want, rep, _) = run(
        Scheme::OnlineCompOpt,
        vec![ScriptedFault::new(
            Site::SubFftCompute { part: Part::First, index: 2 },
            0,
            FaultKind::AddDelta { re: 1.0, im: 0.0 },
        )],
    );
    assert_eq!(rep.subfft_recomputed, 1);
    assert_eq!(rep.full_recomputed, 0);
    assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * N as f64);

    let (out, want, rep, _) = run(
        Scheme::Offline,
        vec![ScriptedFault::new(
            Site::WholeFftCompute,
            100,
            FaultKind::AddDelta { re: 1.0, im: 0.0 },
        )],
    );
    assert_eq!(rep.subfft_recomputed, 0);
    assert_eq!(rep.full_recomputed, 1);
    assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * N as f64);
}

#[test]
fn dmr_covers_twiddle_and_checksum_generation_everywhere() {
    for scheme in
        [Scheme::OnlineComp, Scheme::OnlineCompOpt, Scheme::OnlineMem, Scheme::OnlineMemOpt]
    {
        let (out, want, rep, inj) = run(
            scheme,
            vec![
                ScriptedFault::new(
                    Site::TwiddleDmrPass { pass: 0 },
                    1,
                    FaultKind::SetValue { re: 1e3, im: 1e3 },
                )
                .at_occurrence(2),
                ScriptedFault::new(
                    Site::ChecksumGenPass { pass: 1 },
                    3,
                    FaultKind::AddDelta { re: 7.0, im: 0.0 },
                ),
            ],
        );
        assert_eq!(inj.log().len(), 2, "{scheme:?}");
        assert_eq!(rep.dmr_votes, 2, "{scheme:?}: {rep:?}");
        assert_eq!(rep.subfft_recomputed, 0, "{scheme:?}: DMR fixes without recompute");
        assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * N as f64, "{scheme:?}");
    }
}

#[test]
fn burst_of_faults_across_parts_is_survived() {
    // One fault per protected region class, all in one run.
    let (out, want, rep, inj) = run(
        Scheme::OnlineMemOpt,
        vec![
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::First, index: 0 },
                0,
                FaultKind::AddDelta { re: 0.5, im: 0.0 },
            ),
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::First, index: 31 },
                5,
                FaultKind::AddDelta { re: 0.0, im: 0.5 },
            ),
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::Second, index: 16 },
                8,
                FaultKind::AddDelta { re: -0.25, im: 0.0 },
            ),
            ScriptedFault::new(
                Site::TwiddleDmrPass { pass: 0 },
                2,
                FaultKind::SetValue { re: 0.0, im: 0.0 },
            ),
            ScriptedFault::new(Site::InputMemory, 500, FaultKind::SetValue { re: 3.0, im: 3.0 }),
            ScriptedFault::new(Site::OutputMemory, 42, FaultKind::AddDelta { re: 2.0, im: 2.0 }),
        ],
    );
    assert_eq!(inj.log().len(), 6);
    assert_eq!(rep.uncorrectable, 0, "{rep:?}");
    assert!(rep.total_detected() >= 5, "{rep:?}");
    assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * N as f64);
}

#[test]
fn detection_threshold_gap_offline_vs_online() {
    // Table 5's mechanism: a small error visible to the online scheme's
    // per-sub-FFT η escapes the offline scheme's whole-transform η. At
    // N=1024 the thresholds are η₁ ≈ 2e-12 and η_offline ≈ 3e-9 (both grow
    // with N — the paper's 1e-7 vs 1e-2 gap is at N=2²⁵), so a 1e-10 error
    // sits exactly in the gap.
    let magnitude = 1e-10;
    let fault =
        |site| vec![ScriptedFault::new(site, 11, FaultKind::AddDelta { re: magnitude, im: 0.0 })];

    let (_, _, rep_online, _) =
        run(Scheme::OnlineCompOpt, fault(Site::SubFftCompute { part: Part::First, index: 1 }));
    assert!(rep_online.comp_detected >= 1, "online must see 1e-5: {rep_online:?}");

    let (_, _, rep_offline, _) = run(Scheme::Offline, fault(Site::WholeFftCompute));
    assert_eq!(rep_offline.comp_detected, 0, "offline η is too coarse for 1e-5: {rep_offline:?}");
}

#[test]
fn random_campaign_no_silent_output_corruption() {
    let plan = FtFftPlan::new(N, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
    let mut ws = plan.make_workspace();
    let x = uniform_signal(N, 1);
    let mut clean = vec![Complex64::ZERO; N];
    let mut xin = x.clone();
    plan.execute(&mut xin, &mut clean, &NoFaults, &mut ws);

    let mut campaigns = 0;
    for seed in 0..60u64 {
        let inj = RandomInjector::new(seed, 1.0, RandomKind::BitFlipInRange { lo: 54, hi: 62 }, 1)
            .with_site_filter(|s| {
                matches!(s, Site::InputMemory | Site::IntermediateMemory | Site::OutputMemory)
            });
        let mut xin = x.clone();
        let mut out = vec![Complex64::ZERO; N];
        let rep = plan.execute(&mut xin, &mut out, &inj, &mut ws);
        if inj.log().is_empty() {
            continue;
        }
        campaigns += 1;
        let err = relative_error_inf(&out, &clean);
        assert!(
            rep.total_detected() > 0 || err < 1e-10,
            "seed {seed}: silent corruption err={err}, {rep:?}"
        );
    }
    assert!(campaigns > 30, "campaign should have injected most seeds");
}

//! Multi-tenant service layer, end to end: concurrent tenants through the
//! coalescing admission queue must get outputs and reports **bitwise
//! identical** to fresh per-caller plans, at any worker count, including
//! under scripted fault campaigns.

use std::sync::Arc;
use std::time::Duration;

use ftfft::prelude::*;

const TENANTS: usize = 8;

/// The mixed workload every tenant drives: two pow2 sizes, one non-pow2,
/// across detection/correction schemes.
fn mixed_specs() -> Vec<PlanSpec> {
    let mut specs = Vec::new();
    for &n in &[256usize, 1024] {
        for &s in &[Scheme::Offline, Scheme::OnlineCompOpt, Scheme::OnlineMemOpt] {
            specs.push(PlanSpec::builder(n).scheme(s).build());
        }
    }
    specs.push(PlanSpec::builder(400).scheme(Scheme::OnlineMemOpt).build());
    specs
}

/// Reference: a fresh private plan + workspace, serial direct execution.
fn direct(spec: &PlanSpec, input: &[Complex64]) -> (Vec<Complex64>, FtReport) {
    let plan = FtFftPlan::from_spec(spec);
    let mut ws = plan.make_workspace();
    let mut x = input.to_vec();
    let mut out = vec![Complex64::ZERO; x.len()];
    let rep = plan.execute_batch(&mut x, &mut out, &NoFaults, &mut ws);
    (out, rep)
}

#[test]
fn concurrent_tenants_bitwise_identical_at_any_worker_count() {
    let specs = mixed_specs();
    for workers in [1usize, 2, 8] {
        let svc = FftService::new(
            ServiceConfig::default()
                .with_workers(workers)
                .with_max_batch(4)
                .with_max_wait(Duration::from_millis(2)),
        );
        std::thread::scope(|scope| {
            for t in 0..TENANTS {
                let (svc, specs) = (&svc, &specs);
                scope.spawn(move || {
                    for (i, spec) in specs.iter().enumerate() {
                        let frames = 1 + i % 2;
                        let input = uniform_signal(spec.n() * frames, (t * 100 + i) as u64);
                        let resp = svc.submit(&format!("tenant-{t}"), spec, input.clone()).wait();
                        let (want, want_rep) = direct(spec, &input);
                        assert_eq!(
                            resp.output, want,
                            "workers={workers} tenant={t} spec#{i}: output diverged"
                        );
                        assert_eq!(resp.report, want_rep);
                        assert!(resp.batched_with >= 1 && resp.batched_with <= 4);
                    }
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.requests as usize, TENANTS * specs.len());
        assert_eq!(stats.distinct_plans, specs.len(), "one shared plan per resolved spec");
        assert_eq!(stats.cache_misses as usize, specs.len());
        // 7 misses out of 56 lookups → 0.875; everything else must hit.
        assert!(stats.hit_rate > 0.85, "workers={workers}: hit rate {}", stats.hit_rate);
        assert!(stats.batches >= 1 && stats.mean_batch >= 1.0);
        assert_eq!(stats.report.uncorrectable, 0);
    }
}

#[test]
fn per_tenant_attribution_and_report_merge() {
    let spec = PlanSpec::builder(256).scheme(Scheme::OnlineMemOpt).build();
    let svc = FftService::new(ServiceConfig::default().with_workers(2));
    let mut responses = Vec::new();
    for i in 0..4u64 {
        let input = uniform_signal(256, i);
        let ticket = if i % 2 == 0 {
            // Even requests carry a memory fault the scheme must repair.
            let inj = Arc::new(ScriptedInjector::new(vec![ScriptedFault::new(
                Site::InputMemory,
                100,
                FaultKind::SetValue { re: 3.0, im: 3.0 },
            )]));
            svc.submit_injected("alice", &spec, input, inj)
        } else {
            svc.submit("alice", &spec, input)
        };
        responses.push(ticket.wait());
    }
    let stats = svc.tenant_stats("alice").expect("alice has traffic");
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.frames, 4);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 3);
    let mut want = FtReport::new();
    for r in &responses {
        want.merge(&r.report);
    }
    assert_eq!(stats.report, want, "tenant report must be the merge of its requests");
    assert!(stats.report.mem_detected >= 2, "both injected faults attributed: {want:?}");
    assert_eq!(stats.report.uncorrectable, 0);
    assert_eq!(stats.latency().count, 4);
    assert!(stats.latency().max >= stats.latency().p50);
}

#[test]
fn scripted_fault_campaign_matches_direct_execution() {
    const N: usize = 1024;
    let spec = PlanSpec::builder(N).scheme(Scheme::OnlineCompOpt).build();
    let script = || {
        vec![
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::First, index: 2 },
                5,
                FaultKind::AddDelta { re: 1.0, im: -0.5 },
            ),
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::Second, index: 3 },
                7,
                FaultKind::AddDelta { re: 0.0, im: 2e-3 },
            ),
        ]
    };
    let input = uniform_signal(N, 99);

    let svc = FftService::new(ServiceConfig::default().with_workers(2));
    let inj = Arc::new(ScriptedInjector::new(script()));
    let resp = svc.submit_injected("faulty", &spec, input.clone(), inj.clone()).wait();
    assert!(inj.exhausted(), "campaign must strike through the service path");

    // The same campaign against a fresh private plan is fully
    // deterministic, so the service must reproduce it bit for bit.
    let plan = FtFftPlan::from_spec(&spec);
    let mut ws = plan.make_workspace();
    let direct_inj = ScriptedInjector::new(script());
    let mut x = input.clone();
    let mut want = vec![Complex64::ZERO; N];
    let want_rep = plan.execute(&mut x, &mut want, &direct_inj, &mut ws);
    assert_eq!(resp.output, want, "faulty runs must match direct execution bitwise");
    assert_eq!(resp.report, want_rep);
    assert_eq!(resp.report.comp_detected, 2);
    assert_eq!(resp.report.uncorrectable, 0);

    // And recovery must still deliver the correct transform.
    let clean = dft_naive(&input, Direction::Forward);
    assert!(ftfft::numeric::max_abs_diff(&resp.output, &clean) < 1e-8 * N as f64);
}

#[test]
fn service_reuses_one_plan_across_tenants() {
    let spec = PlanSpec::builder(512).scheme(Scheme::OnlineMemOpt).build();
    let svc = FftService::new(
        ServiceConfig::default()
            .with_workers(4)
            .with_max_batch(8)
            .with_max_wait(Duration::from_millis(1)),
    );
    std::thread::scope(|scope| {
        for t in 0..TENANTS {
            let (svc, spec) = (&svc, &spec);
            scope.spawn(move || {
                for r in 0..4u64 {
                    let input = uniform_signal(512, t as u64 * 17 + r);
                    let resp = svc.submit(&format!("t{t}"), spec, input.clone()).wait();
                    let (want, _) = direct(spec, &input);
                    assert_eq!(resp.output, want);
                }
            });
        }
    });
    let stats = svc.stats();
    assert_eq!(stats.requests, (TENANTS * 4) as u64);
    assert_eq!(stats.distinct_plans, 1);
    assert_eq!(stats.cache_misses, 1, "exactly one plan build for 32 requests");
    assert!(stats.hit_rate > 0.9);
    for (name, t) in svc.all_tenant_stats() {
        assert_eq!(t.requests, 4, "{name}");
        assert_eq!(t.frames, 4, "{name}");
    }
}

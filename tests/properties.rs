//! Property-based tests (proptest) on the core invariants.

use ftfft::checksum::{
    combined_checksum, combined_sum1, combined_verify, gather_combined, gather_sum1,
    input_checksum_vector, mem_checksum, verify_and_correct, weighted_sum, MemVerdict,
};
use ftfft::fft::strided::gather;
// `ftfft::prelude::Strategy` (the planner's execution strategy) collides
// with proptest's `Strategy` trait under the two glob imports.
use ftfft::fft::Strategy as FftStrategy;
use ftfft::numeric::simd;
use ftfft::prelude::*;
use proptest::prelude::*;
use proptest::Strategy;

fn arb_signal(max_log2: u32) -> impl proptest::Strategy<Value = Vec<Complex64>> {
    (1u32..=max_log2).prop_flat_map(|log2n| {
        let n = 1usize << log2n;
        (prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n))
            .prop_map(|v| v.into_iter().map(|(re, im)| Complex64::new(re, im)).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// fft then inverse fft recovers the input (after normalization).
    #[test]
    fn fft_round_trip(x in arb_signal(10)) {
        let y = fft(&x);
        let mut z = ifft(&y);
        normalize(&mut z);
        let err = ftfft::numeric::max_abs_diff(&z, &x);
        prop_assert!(err < 1e-9, "err {err}");
    }

    /// Linearity: FFT(a·x + y) == a·FFT(x) + FFT(y).
    #[test]
    fn fft_linearity(x in arb_signal(9), scale in -3.0f64..3.0) {
        let n = x.len();
        let y = uniform_signal(n, 999);
        let lhs: Vec<Complex64> = {
            let combo: Vec<Complex64> = x.iter().zip(&y).map(|(&a, &b)| a.scale(scale) + b).collect();
            fft(&combo)
        };
        let fx = fft(&x);
        let fy = fft(&y);
        for j in 0..n {
            let rhs = fx[j].scale(scale) + fy[j];
            prop_assert!(lhs[j].approx_eq(rhs, 1e-8 * n as f64), "bin {j}");
        }
    }

    /// Parseval: energy is preserved up to the 1/N convention.
    #[test]
    fn fft_parseval(x in arb_signal(10)) {
        let n = x.len() as f64;
        let y = fft(&x);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum();
        prop_assert!((ey - n * ex).abs() <= 1e-7 * (ey.abs() + 1.0));
    }

    /// The ABFT invariant r·FFT(x) == (rA)·x for random inputs.
    #[test]
    fn abft_invariant(x in arb_signal(10)) {
        let n = x.len();
        let ra = input_checksum_vector(n, Direction::Forward);
        let cx = combined_sum1(&x, &ra);
        let y = fft(&x);
        let rx = weighted_sum(&y);
        prop_assert!((rx - cx).norm() < 1e-7 * n as f64, "residual {}", (rx - cx).norm());
    }

    /// Memory checksum locate/correct round-trips for any position and a
    /// detectable magnitude.
    #[test]
    fn memory_locate_correct_round_trip(
        x in arb_signal(9),
        idx_frac in 0.0f64..1.0,
        delta_re in prop::sample::select(vec![0.5f64, -2.0, 10.0, 1e3]),
    ) {
        let n = x.len();
        let idx = ((idx_frac * n as f64) as usize).min(n - 1);
        let ck = mem_checksum(&x);
        let mut corrupted = x.clone();
        corrupted[idx] += Complex64::new(delta_re, -delta_re);
        let v = verify_and_correct(&mut corrupted, ck, 1e-9);
        prop_assert!(matches!(v, MemVerdict::Located { index, .. } if index == idx), "{v:?}");
        for (a, b) in corrupted.iter().zip(&x) {
            prop_assert!(a.approx_eq(*b, 1e-7));
        }
    }

    /// Combined checksums (rA weights) also locate and size faults.
    #[test]
    fn combined_locate_round_trip(
        x in arb_signal(8),
        idx_frac in 0.0f64..1.0,
    ) {
        let n = x.len();
        let idx = ((idx_frac * n as f64) as usize).min(n - 1);
        let ra = input_checksum_vector(n, Direction::Forward);
        let ck = combined_checksum(&x, &ra);
        let mut corrupted = x.clone();
        corrupted[idx] += Complex64::new(3.0, 1.0);
        match combined_verify(&corrupted, &ra, ck, 1e-8) {
            MemVerdict::Located { index, delta } => {
                prop_assert_eq!(index, idx);
                prop_assert!(delta.approx_eq(Complex64::new(3.0, 1.0), 1e-5));
            }
            v => prop_assert!(false, "expected Located, got {:?}", v),
        }
    }

    /// The protected transform equals the plain transform bit-for-bit in
    /// fault-free runs (protection must not perturb results).
    #[test]
    fn protected_equals_plain_when_fault_free(x in arb_signal(9)) {
        let n = x.len();
        let plain = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::Plain));
        let prot = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
        let mut a = x.clone();
        let mut out_a = vec![Complex64::ZERO; n];
        plain.execute_alloc(&mut a, &mut out_a, &NoFaults);
        let mut b = x.clone();
        let mut out_b = vec![Complex64::ZERO; n];
        let rep = prot.execute_alloc(&mut b, &mut out_b, &NoFaults);
        prop_assert!(rep.is_clean());
        prop_assert_eq!(out_a, out_b);
    }

    /// A random computational fault of visible size is always detected and
    /// the final output still matches the clean transform.
    #[test]
    fn injected_subfft_fault_always_detected(
        x in arb_signal(9),
        element in 0usize..64,
        magnitude in prop::sample::select(vec![1e-3f64, 1e-1, 1.0, 100.0]),
    ) {
        let n = x.len();
        let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineCompOpt));
        let k = plan.two().k();
        let idx = element % k;
        let inj = ScriptedInjector::new(vec![ScriptedFault::new(
            Site::SubFftCompute { part: Part::First, index: idx },
            element,
            FaultKind::AddDelta { re: magnitude, im: 0.0 },
        )]);
        let mut a = x.clone();
        let mut out = vec![Complex64::ZERO; n];
        let rep = plan.execute_alloc(&mut a, &mut out, &inj);
        prop_assert_eq!(rep.comp_detected, 1, "{:?}", rep);
        let want = fft(&x);
        prop_assert!(ftfft::numeric::max_abs_diff(&out, &want) < 1e-8 * n as f64);
    }

    /// The planner's FFT agrees with the O(n²) reference DFT for *any*
    /// size (radix-2, mixed-radix, and Bluestein paths) and for both of
    /// the paper's input distributions.
    #[test]
    fn fft_matches_dft_naive(
        n in 2usize..=96,
        dist in prop::sample::select(vec![SignalDist::Uniform, SignalDist::Normal]),
        seed in 0u64..1024,
    ) {
        let x = dist.generate(n, seed);
        let got = fft(&x);
        let want = dft_naive(&x, Direction::Forward);
        let err = ftfft::numeric::max_abs_diff(&got, &want);
        prop_assert!(err < 1e-9 * (n as f64).powi(2), "n={n} {dist:?} err={err}");
    }

    /// Round trip holds off the power-of-two fast path too (mixed-radix
    /// and Bluestein sizes, both distributions).
    #[test]
    fn fft_round_trip_any_size(
        n in 2usize..=257,
        dist in prop::sample::select(vec![SignalDist::Uniform, SignalDist::Normal]),
        seed in 0u64..1024,
    ) {
        let x = dist.generate(n, seed);
        let mut z = ifft(&fft(&x));
        normalize(&mut z);
        let err = ftfft::numeric::max_abs_diff(&z, &x);
        prop_assert!(err < 1e-8, "n={n} {dist:?} err={err}");
    }

    /// A visible scripted fault at *any* site the OnlineMemOpt scheme
    /// claims to cover (input/intermediate/output memory, sub-FFT compute)
    /// is detected, and the delivered output still matches the clean
    /// transform.
    #[test]
    fn scripted_fault_at_covered_site_detected(
        log2n in 6u32..10,
        site_sel in 0usize..4,
        idx_frac in 0.0f64..1.0,
        magnitude in prop::sample::select(vec![0.5f64, 3.0, 50.0]),
    ) {
        let n = 1usize << log2n;
        let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
        let element = ((idx_frac * n as f64) as usize).min(n - 1);
        let site = match site_sel {
            0 => Site::InputMemory,
            1 => Site::IntermediateMemory,
            2 => Site::OutputMemory,
            _ => Site::SubFftCompute { part: Part::First, index: element % plan.two().k() },
        };
        let inj = ScriptedInjector::new(vec![ScriptedFault::new(
            site,
            element,
            FaultKind::AddDelta { re: magnitude, im: -magnitude },
        )]);
        let x = uniform_signal(n, log2n as u64 * 1009 + site_sel as u64);
        let mut xin = x.clone();
        let mut out = vec![Complex64::ZERO; n];
        let rep = plan.execute_alloc(&mut xin, &mut out, &inj);
        prop_assert!(inj.unfired().is_empty(), "fault never fired: {site:?}");
        match site {
            Site::SubFftCompute { .. } => {
                prop_assert!(rep.comp_detected >= 1, "{site:?} el={element}: {rep:?}")
            }
            _ => prop_assert!(rep.mem_detected >= 1, "{site:?} el={element}: {rep:?}"),
        }
        let want = fft(&x);
        let err = ftfft::numeric::max_abs_diff(&out, &want);
        prop_assert!(err < 1e-8 * n as f64, "{site:?} el={element} err={err}");
    }

    /// Parallel == sequential for random power-of-two sizes and rank counts.
    #[test]
    fn parallel_matches_sequential(log2n in 8u32..12, logp in 0u32..3) {
        let n = 1usize << log2n;
        let p = 1usize << logp;
        let x = uniform_signal(n, log2n as u64 * 31 + logp as u64);
        let want = fft(&x);
        let plan = ParallelFft::new(n, p, ParallelScheme::OptFtFftw, None, SignalDist::Uniform.component_std_dev(), 3);
        let (out, rep) = plan.run(&x, &NoFaults);
        prop_assert!(rep.is_clean(), "{:?}", rep);
        prop_assert!(relative_error_inf(&out, &want) < 1e-9);
    }

    /// Every power-of-two kernel (radix-2, radix-4, split-radix) agrees
    /// with the O(n²) reference DFT at sizes 2¹–2¹² on seeded signals.
    #[test]
    fn pow2_kernels_match_dft_naive(
        log2n in 1u32..=12,
        dist in prop::sample::select(vec![SignalDist::Uniform, SignalDist::Normal]),
        seed in 0u64..1024,
    ) {
        let n = 1usize << log2n;
        let x = dist.generate(n, seed);
        let want = dft_naive(&x, Direction::Forward);
        for kernel in Pow2Kernel::ALL {
            let plan = FftPlan::new_with_kernel(n, Direction::Forward, kernel);
            let mut got = vec![Complex64::ZERO; n];
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.execute(&x, &mut got, &mut scratch);
            let err = ftfft::numeric::max_abs_diff(&got, &want);
            prop_assert!(err < 1e-9 * n as f64, "{} n={n} err={err}", kernel.name());
        }
    }

    /// Fused gather+checksum equals the separate gather-then-checksum
    /// passes **bitwise**, for any count/stride/offset — both the sum1
    /// and the full combined-pair routines, clean and corrupted inputs.
    #[test]
    fn fused_gather_checksum_bitwise_equals_separate(
        count in 1usize..300,
        stride in 1usize..20,
        offset_frac in 0.0f64..1.0,
        corrupt in 0usize..2,
    ) {
        let offset = ((offset_frac * stride as f64) as usize).min(stride - 1);
        let mut src = uniform_signal(offset + count * stride, count as u64 * 31 + stride as u64);
        if corrupt == 1 {
            // A corrupted source must flow through both paths identically.
            let idx = (count / 2) * stride + offset;
            src[idx] = Complex64::new(1e9, -1e9);
        }
        let ra = input_checksum_vector(count, Direction::Forward);

        let mut fused_buf = vec![Complex64::ZERO; count];
        let fused1 = gather_sum1(&src, offset, stride, &ra, &mut fused_buf);
        let mut sep_buf = vec![Complex64::ZERO; count];
        gather(&src, offset, stride, &mut sep_buf);
        prop_assert_eq!(&fused_buf, &sep_buf);
        prop_assert_eq!(fused1, combined_sum1(&sep_buf, &ra));

        let pair = gather_combined(&src, offset, stride, &ra, &mut fused_buf);
        prop_assert_eq!(&fused_buf, &sep_buf);
        prop_assert_eq!(pair, combined_checksum(&sep_buf, &ra));
    }

    /// The SIMD micro-kernels equal the scalar fallback **bitwise** at
    /// every size and alignment (slices starting at odd offsets force
    /// unaligned vector loads). This is the dispatch-level reproducibility
    /// contract the checksum thresholds rely on.
    #[test]
    fn simd_kernels_bitwise_equal_scalar_fallback(
        n in 1usize..260,
        off in 0usize..4,
        seed in 0u64..512,
    ) {
        let x = uniform_signal(n + off, seed);
        let w = uniform_signal(n + off, seed + 7);
        let xs = &x[off..];
        let ws_ = &w[off..];
        let at = |level: SimdLevel| {
            ftfft::numeric::force_level(Some(level));
            let d = simd::dot(xs, ws_);
            let p = simd::dot_pair(xs, ws_);
            let s = simd::weighted_sum3(xs, Complex64::I, -Complex64::ONE);
            let mut a = xs.to_vec();
            simd::cmul_inplace(&mut a, ws_);
            let mut acc1 = ws_.to_vec();
            let mut acc2 = xs.to_vec();
            simd::axpy2(&mut acc1, &mut acc2, xs, Complex64::I, Complex64::ONE);
            (d, p, s, a, acc1, acc2)
        };
        let scalar = at(SimdLevel::Scalar);
        let hw = {
            ftfft::numeric::force_level(None);
            simd_level()
        };
        if hw == SimdLevel::Avx {
            let avx = at(SimdLevel::Avx);
            ftfft::numeric::force_level(None);
            prop_assert_eq!(scalar, avx);
        }
    }

    /// Threaded part-1 (PooledFtFft) detects and corrects scripted faults
    /// identically to the single-threaded executor: same outputs bitwise,
    /// same report, at any worker count.
    #[test]
    fn pooled_part1_equals_serial_under_faults(
        log2n in 6u32..10,
        threads in 2usize..6,
        element in 0usize..64,
        magnitude in prop::sample::select(vec![1e-3f64, 0.5, 10.0]),
    ) {
        let n = 1usize << log2n;
        let mk_faults = |k: usize| vec![
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::First, index: element % k },
                element,
                FaultKind::AddDelta { re: magnitude, im: -magnitude },
            ),
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::Second, index: (element / 2) % k },
                element / 3,
                FaultKind::AddDelta { re: 0.0, im: magnitude },
            ),
        ];
        let x0 = uniform_signal(n, 5);

        let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineCompOpt));
        let k = plan.two().k();
        let inj = ScriptedInjector::new(mk_faults(k));
        let mut xs = x0.clone();
        let mut want = vec![Complex64::ZERO; n];
        let mut ws = plan.make_workspace();
        let want_rep = plan.execute(&mut xs, &mut want, &inj, &mut ws);

        let pooled = PooledFtFft::new(FtFftPlan::new(
            n,
            Direction::Forward,
            FtConfig::new(Scheme::OnlineCompOpt).with_threads(threads),
        ));
        let inj2 = ScriptedInjector::new(mk_faults(k));
        let mut xp = x0.clone();
        let mut got = vec![Complex64::ZERO; n];
        let mut pws = pooled.make_workspace();
        let got_rep = pooled.execute(&mut xp, &mut got, &inj2, &mut pws);

        prop_assert!(inj2.exhausted(), "threads={threads}");
        prop_assert_eq!(got_rep, want_rep, "threads={}", threads);
        prop_assert_eq!(got, want, "threads={}", threads);
    }

    /// Radix-4 and split-radix agree with the radix-2 kernel on the same
    /// seeded input at sizes 2¹–2¹² (tight tolerance: all three compute
    /// the same decimation, only the operation grouping differs).
    #[test]
    fn pow2_kernels_agree_with_radix2(log2n in 1u32..=12, seed in 0u64..1024) {
        let n = 1usize << log2n;
        let x = uniform_signal(n, seed);
        let r2 = FftPlan::new_with_kernel(n, Direction::Forward, Pow2Kernel::Radix2);
        let mut want = vec![Complex64::ZERO; n];
        let mut r2_scratch = vec![Complex64::ZERO; r2.scratch_len()];
        r2.execute(&x, &mut want, &mut r2_scratch);
        for kernel in [Pow2Kernel::Radix4, Pow2Kernel::SplitRadix] {
            let plan = FftPlan::new_with_kernel(n, Direction::Forward, kernel);
            let mut got = vec![Complex64::ZERO; n];
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.execute(&x, &mut got, &mut scratch);
            let err = ftfft::numeric::max_abs_diff(&got, &want);
            prop_assert!(err < 1e-11 * n as f64, "{} n={n} err={err}", kernel.name());
        }
    }

    /// `FtFftPlan::execute_batch` produces exactly the outputs and report
    /// of a hand-written loop over `execute` — fault-free.
    #[test]
    fn ft_batch_equals_looped_execute_clean(
        log2n in 4u32..9,
        batch in 1usize..5,
        seed in 0u64..512,
    ) {
        let n = 1usize << log2n;
        let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
        let src = uniform_signal(n * batch, seed);

        let mut xs = src.clone();
        let mut outs = vec![Complex64::ZERO; n * batch];
        let mut ws = plan.make_workspace();
        let rep_batch = plan.execute_batch(&mut xs, &mut outs, &NoFaults, &mut ws);

        let mut looped = vec![Complex64::ZERO; n * batch];
        let mut rep_loop = FtReport::new();
        let mut ws2 = plan.make_workspace();
        let mut xs2 = src.clone();
        for (x, out) in xs2.chunks_exact_mut(n).zip(looped.chunks_exact_mut(n)) {
            rep_loop.merge(&plan.execute(x, out, &NoFaults, &mut ws2));
        }
        prop_assert!(rep_batch.is_clean(), "{:?}", rep_batch);
        prop_assert_eq!(rep_batch, rep_loop);
        prop_assert_eq!(outs, looped);
    }

    /// Batch ≡ loop also under scripted faults: identical injectors see
    /// identical site-visit sequences, so detection counters, corrections,
    /// and outputs all line up, and every transform is still correct.
    #[test]
    fn ft_batch_equals_looped_execute_under_faults(
        log2n in 6u32..9,
        batch in 2usize..4,
        element in 0usize..64,
        magnitude in prop::sample::select(vec![0.5f64, 3.0, 50.0]),
    ) {
        let n = 1usize << log2n;
        let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
        let faults = vec![
            ScriptedFault::new(
                Site::InputMemory,
                element % n,
                FaultKind::AddDelta { re: magnitude, im: -magnitude },
            ),
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::First, index: element % plan.two().k() },
                element,
                FaultKind::AddDelta { re: magnitude, im: 0.0 },
            ),
        ];
        let src = uniform_signal(n * batch, 77 + element as u64);

        let mut xs = src.clone();
        let mut outs = vec![Complex64::ZERO; n * batch];
        let mut ws = plan.make_workspace();
        let inj_batch = ScriptedInjector::new(faults.clone());
        let rep_batch = plan.execute_batch(&mut xs, &mut outs, &inj_batch, &mut ws);

        let mut looped = vec![Complex64::ZERO; n * batch];
        let mut rep_loop = FtReport::new();
        let mut ws2 = plan.make_workspace();
        let mut xs2 = src.clone();
        let inj_loop = ScriptedInjector::new(faults);
        for (x, out) in xs2.chunks_exact_mut(n).zip(looped.chunks_exact_mut(n)) {
            rep_loop.merge(&plan.execute(x, out, &inj_loop, &mut ws2));
        }
        prop_assert_eq!(rep_batch, rep_loop);
        prop_assert_eq!(&outs, &looped);
        prop_assert_eq!(rep_batch.uncorrectable, 0, "{:?}", rep_batch);
        // Both faults fired and were repaired: every chunk matches the
        // clean transform.
        for (x, out) in src.chunks_exact(n).zip(outs.chunks_exact(n)) {
            let want = fft(x);
            let err = ftfft::numeric::max_abs_diff(out, &want);
            prop_assert!(err < 1e-8 * n as f64, "err={err}");
        }
    }

    /// The split-complex (SoA) engine is bitwise identical to the AoS
    /// kernels: every power-of-two kernel, 2^1–2^12, forward and inverse,
    /// at both SIMD dispatch levels.
    #[test]
    fn soa_layout_bitwise_equals_aos_all_kernels(
        log2n in 1u32..=12,
        seed in 0u64..512,
        forward in 0u8..2,
    ) {
        let n = 1usize << log2n;
        let dir = if forward == 1 { Direction::Forward } else { Direction::Inverse };
        let x = uniform_signal(n, seed);
        let run = |kernel: Pow2Kernel, layout: Layout| {
            let plan = FftPlan::new_with_kernel_layout(n, dir, kernel, layout);
            let mut dst = vec![Complex64::ZERO; n];
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.execute(&x, &mut dst, &mut scratch);
            dst
        };
        for kernel in Pow2Kernel::ALL {
            let at = |level: SimdLevel| {
                ftfft::numeric::force_level(Some(level));
                let out = (run(kernel, Layout::Aos), run(kernel, Layout::Soa));
                ftfft::numeric::force_level(None);
                out
            };
            let (aos_s, soa_s) = at(SimdLevel::Scalar);
            prop_assert_eq!(&aos_s, &soa_s, "{} scalar layouts differ", kernel.name());
            if simd_level() == SimdLevel::Avx {
                let (aos_v, soa_v) = at(SimdLevel::Avx);
                prop_assert_eq!(&aos_v, &soa_v, "{} avx layouts differ", kernel.name());
                prop_assert_eq!(&aos_s, &aos_v, "{} aos levels differ", kernel.name());
                prop_assert_eq!(&soa_s, &soa_v, "{} soa levels differ", kernel.name());
            }
        }
    }

    /// The two-halves parallel DIT strategy is bitwise identical to the
    /// serial plan: any worker count 1–8, forward and inverse, at both
    /// SIMD dispatch levels, against the serial radix-2 kernel in both
    /// layouts (which are themselves bitwise-identical), out-of-place and
    /// in-place. The strategy changes only the schedule, never a single
    /// arithmetic operation or its order.
    #[test]
    fn parallel_strategy_bitwise_equals_serial(
        log2n in 12u32..=16,
        threads in 1usize..=8,
        forward in 0u8..2,
        scalar in 0u8..2,
    ) {
        let n = 1usize << log2n;
        let dir = if forward == 1 { Direction::Forward } else { Direction::Inverse };
        let x = uniform_signal(n, log2n as u64 * 131 + threads as u64);
        let level = if scalar == 1 || simd_level() != SimdLevel::Avx {
            SimdLevel::Scalar
        } else {
            SimdLevel::Avx
        };
        ftfft::numeric::force_level(Some(level));
        let run_serial = |layout: Layout| {
            let plan = FftPlan::new_with_kernel_layout(n, dir, Pow2Kernel::Radix2, layout);
            let mut dst = vec![Complex64::ZERO; n];
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.execute(&x, &mut dst, &mut scratch);
            dst
        };
        let want_aos = run_serial(Layout::Aos);
        let want_soa = run_serial(Layout::Soa);

        let plan = FftPlan::new_parallel(n, dir, threads);
        let mut got = vec![Complex64::ZERO; n];
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        plan.execute(&x, &mut got, &mut scratch);
        let mut inplace = x.clone();
        plan.execute_inplace(&mut inplace, &mut scratch);
        ftfft::numeric::force_level(None);

        prop_assert_eq!(&got, &want_aos, "threads={} {:?} {:?}", threads, dir, level);
        prop_assert_eq!(&got, &want_soa, "threads={} {:?} {:?}", threads, dir, level);
        prop_assert_eq!(&inplace, &got, "in-place differs, threads={}", threads);
    }

    /// A scripted fault campaign behaves identically whichever execution
    /// strategy runs it: the serial executor and the pooled executor at
    /// any worker count 1–8 must produce the same outputs bitwise and the
    /// same report, with faults striking both parts — under both the
    /// unoptimized and the optimized computational scheme.
    #[test]
    fn fault_campaign_identical_across_worker_strategies(
        log2n in 6u32..10,
        threads in 1usize..=8,
        element in 0usize..64,
        magnitude in prop::sample::select(vec![1e-3f64, 0.5, 10.0]),
        scheme in prop::sample::select(vec![Scheme::OnlineComp, Scheme::OnlineCompOpt]),
    ) {
        let n = 1usize << log2n;
        let mk_faults = |k: usize, m: usize| vec![
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::First, index: element % k },
                element % m,
                FaultKind::AddDelta { re: magnitude, im: -magnitude },
            ),
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::Second, index: element % m },
                element % k,
                FaultKind::AddDelta { re: 0.0, im: magnitude },
            ),
        ];
        let x0 = uniform_signal(n, 13 + element as u64);

        let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(scheme));
        let (k, m) = (plan.two().k(), plan.two().m());
        let inj = ScriptedInjector::new(mk_faults(k, m));
        let mut xs = x0.clone();
        let mut want = vec![Complex64::ZERO; n];
        let mut ws = plan.make_workspace();
        let want_rep = plan.execute(&mut xs, &mut want, &inj, &mut ws);
        prop_assert!(inj.exhausted());

        let pooled = PooledFtFft::new(FtFftPlan::new(
            n,
            Direction::Forward,
            FtConfig::new(scheme).with_threads(threads),
        ));
        let inj2 = ScriptedInjector::new(mk_faults(k, m));
        let mut xp = x0.clone();
        let mut got = vec![Complex64::ZERO; n];
        let mut pws = pooled.make_workspace();
        let got_rep = pooled.execute(&mut xp, &mut got, &inj2, &mut pws);

        prop_assert!(inj2.exhausted(), "threads={threads}");
        prop_assert_eq!(got_rep, want_rep, "{:?} threads={}", scheme, threads);
        prop_assert_eq!(got, want, "{:?} threads={}", scheme, threads);
        prop_assert_eq!(want_rep.uncorrectable, 0, "{:?}", want_rep);
    }

    /// A scripted fault campaign behaves identically whichever layout the
    /// protected executors' sub-plans run: same outputs bitwise, same
    /// report, and the correction lands on the right element even though
    /// the SoA path detects it through the split-plane gather+checksum.
    #[test]
    fn fault_campaign_identical_across_layouts(
        log2n in 6u32..10,
        element in 0usize..64,
        magnitude in prop::sample::select(vec![1e-3f64, 0.5, 20.0]),
        scheme in prop::sample::select(vec![Scheme::OnlineCompOpt, Scheme::OnlineMemOpt]),
    ) {
        let n = 1usize << log2n;
        let src = uniform_signal(n, 31 + element as u64);
        // Memory faults are only correctable by the memory hierarchy;
        // the computational scheme gets a second compute fault instead.
        let mk_faults = |k: usize| {
            let m = n / k;
            let first = if scheme.protects_memory() {
                ScriptedFault::new(
                    Site::InputMemory,
                    element % n,
                    FaultKind::SetValue { re: 4.0 + magnitude, im: -3.0 },
                )
            } else {
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::Second, index: element % m },
                    element % k,
                    FaultKind::AddDelta { re: magnitude, im: magnitude },
                )
            };
            vec![
                first,
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::First, index: element % k },
                    element % m,
                    FaultKind::AddDelta { re: 0.0, im: magnitude },
                ),
            ]
        };
        let run = |layout: Layout| {
            force_layout(Some(layout));
            let plan = FtFftPlan::new(n, Direction::Forward, FtConfig::new(scheme));
            force_layout(None);
            let inj = ScriptedInjector::new(mk_faults(plan.two().k()));
            let mut x = src.clone();
            let mut out = vec![Complex64::ZERO; n];
            let mut ws = plan.make_workspace();
            let rep = plan.execute(&mut x, &mut out, &inj, &mut ws);
            prop_assert!(inj.exhausted(), "not every fault fired");
            Ok((out, rep))
        };
        let (out_aos, rep_aos) = run(Layout::Aos)?;
        let (out_soa, rep_soa) = run(Layout::Soa)?;
        prop_assert_eq!(&out_aos, &out_soa, "layouts disagree after correction");
        prop_assert_eq!(rep_aos, rep_soa);
        prop_assert_eq!(rep_soa.uncorrectable, 0, "{:?}", rep_soa);
        // The corrections landed: the output matches the clean transform.
        let want = fft(&src);
        let err = ftfft::numeric::max_abs_diff(&out_soa, &want);
        prop_assert!(err < 1e-8 * n as f64, "err={err}");
    }
}

/// Deterministic large-size spot check for the two-halves parallel DIT:
/// the proptest above stops at 2^16 to keep debug-mode runtime sane, but
/// the strategy targets *large* transforms — verify bitwise identity to
/// the serial radix-2 plan at 2^20 (above `PARALLEL_MIN`), forward and
/// inverse, at several worker counts.
#[test]
fn parallel_strategy_bitwise_equals_serial_at_2_20() {
    let n = 1usize << 20;
    let x = uniform_signal(n, 0xF17F);
    for dir in [Direction::Forward, Direction::Inverse] {
        let serial = FftPlan::new_with_kernel_layout(n, dir, Pow2Kernel::Radix2, Layout::Aos);
        let mut want = vec![Complex64::ZERO; n];
        let mut scratch = vec![Complex64::ZERO; serial.scratch_len()];
        serial.execute(&x, &mut want, &mut scratch);
        for threads in [2usize, 5, 8] {
            let plan = FftPlan::new_parallel(n, dir, threads);
            assert!(
                FftStrategy::Auto.picks_parallel(n, threads),
                "2^20 with {threads} workers must be above the auto cutoff"
            );
            let mut got = vec![Complex64::ZERO; n];
            let mut ps = vec![Complex64::ZERO; plan.scratch_len()];
            plan.execute(&x, &mut got, &mut ps);
            assert_eq!(got, want, "threads={threads} {dir:?}");
        }
    }
}

//! Property and integration tests for the streaming subsystem
//! (`ftfft-stream`): overlap-save convolution against the direct O(n·k)
//! oracle, the protected real-input path against the complex plan,
//! STFT round trips, chunking invariance, and the pooled frame scheduler.

use ftfft::prelude::*;
use ftfft::stream::cola_profile;
use proptest::prelude::*;

fn real_signal(n: usize, seed: u64) -> Vec<f64> {
    uniform_signal(n, seed).iter().map(|z| z.re).collect()
}

/// Direct (schoolbook) linear convolution — the O(n·k) oracle.
fn convolve_direct(x: &[f64], taps: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; x.len() + taps.len() - 1];
    for (i, &a) in x.iter().enumerate() {
        for (j, &b) in taps.iter().enumerate() {
            y[i + j] += a * b;
        }
    }
    y
}

/// Runs a whole signal through a fresh convolver (process + flush).
fn stream_convolve(
    taps: &[f64],
    fft_size: usize,
    scheme: Scheme,
    x: &[f64],
    chunks: &[usize],
    injector: &dyn FaultInjector,
) -> (Vec<f64>, StreamReport) {
    let mut conv = StreamingConvolver::with_fft_size(taps, fft_size, FtConfig::new(scheme));
    let mut out = vec![0.0; x.len() + taps.len() - 1 + conv.hop()];
    let mut consumed = 0;
    let mut produced = 0;
    for &c in chunks {
        let end = (consumed + c).min(x.len());
        produced += conv.process_into(&x[consumed..end], &mut out[produced..], injector);
        consumed = end;
    }
    produced += conv.process_into(&x[consumed..], &mut out[produced..], injector);
    produced += conv.flush_into(&mut out[produced..], injector);
    out.truncate(produced);
    let report = *conv.report();
    (out, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Overlap-save protected convolution equals the direct O(n·k)
    /// convolution on random signals and taps, for any scheme class.
    #[test]
    fn overlap_save_matches_direct(
        len in 40usize..400,
        taps_log in 1u32..5,
        seed in 0u64..1000,
    ) {
        let taps = real_signal((1usize << taps_log) + 1, seed.wrapping_mul(7) + 1);
        let x = real_signal(len, seed + 1);
        let want = convolve_direct(&x, &taps);
        let (got, rep) = stream_convolve(
            &taps, 64, Scheme::OnlineMemOpt, &x, &[], &NoFaults,
        );
        prop_assert_eq!(got.len(), want.len());
        for (t, (a, b)) in got.iter().zip(&want).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "t={} {} vs {}", t, a, b);
        }
        prop_assert!(rep.is_clean());
    }

    /// Streaming output is bitwise independent of input chunking — any
    /// split of `process_into` calls equals the one-shot batch, report
    /// included.
    #[test]
    fn chunked_stream_equals_one_shot_bitwise(
        len in 100usize..500,
        seed in 0u64..1000,
        cuts in prop::collection::vec(1usize..97, 0..8),
    ) {
        let taps = real_signal(9, 42);
        let x = real_signal(len, seed);
        let (want, want_rep) =
            stream_convolve(&taps, 64, Scheme::OnlineMemOpt, &x, &[], &NoFaults);
        let (got, got_rep) =
            stream_convolve(&taps, 64, Scheme::OnlineMemOpt, &x, &cuts, &NoFaults);
        prop_assert_eq!(got, want);
        prop_assert_eq!(got_rep, want_rep);
    }

    /// The protected real-input path agrees with the complex plan run on
    /// the real-extended input (clean).
    #[test]
    fn real_plan_matches_complex_plan(log2n in 4u32..9, seed in 0u64..1000) {
        let n = 1usize << log2n;
        let x = real_signal(n, seed);
        let real_plan =
            RealFtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
        let mut rws = real_plan.make_workspace();
        let mut spec = vec![Complex64::ZERO; real_plan.spectrum_len()];
        let rep = real_plan.forward(&x, &mut spec, &NoFaults, &mut rws);
        prop_assert_eq!(rep.uncorrectable, 0);

        let complex_plan =
            FtFftPlan::new(n, Direction::Forward, FtConfig::new(Scheme::OnlineMemOpt));
        let mut cws = complex_plan.make_workspace();
        let mut xc: Vec<Complex64> = x.iter().map(|&r| Complex64::new(r, 0.0)).collect();
        let mut want = vec![Complex64::ZERO; n];
        complex_plan.execute(&mut xc, &mut want, &NoFaults, &mut cws);

        for j in 0..=n / 2 {
            prop_assert!(
                spec[j].approx_eq(want[j], 1e-9 * n as f64),
                "bin {}: {:?} vs {:?}", j, spec[j], want[j]
            );
        }
    }

    /// STFT → ISTFT round trip is exact (≤ 1e-10) for COLA windows
    /// wherever the window stack covers the sample.
    #[test]
    fn stft_round_trip(
        frames in 3usize..12,
        hop_div in 1u32..3,
        seed in 0u64..1000,
        win in prop::sample::select(vec![Window::Hann, Window::Hamming]),
    ) {
        let n = 128;
        let hop = n / (2 << hop_div.min(2));
        let plan = StftPlan::new(n, hop, win, FtConfig::new(Scheme::OnlineMemOpt));
        let len = plan.signal_len(frames);
        let x = real_signal(len, seed);
        let mut ws = plan.make_workspace();
        let mut spec = vec![Complex64::ZERO; plan.num_frames(len) * plan.bins()];
        let a_rep = plan.analyze_into(&x, &mut spec, &NoFaults, &mut ws);
        prop_assert!(a_rep.is_clean());
        let mut back = vec![0.0; len];
        let s_rep = plan.synthesize_into(&spec, &mut back, &NoFaults, &mut ws);
        prop_assert!(s_rep.is_clean());
        for t in 1..len - 1 {
            prop_assert!((back[t] - x[t]).abs() < 1e-10, "t={} {} vs {}", t, back[t], x[t]);
        }
    }
}

#[test]
fn convolver_works_with_every_scheme() {
    let taps = real_signal(9, 1);
    let x = real_signal(260, 2);
    let want = convolve_direct(&x, &taps);
    for scheme in Scheme::ALL {
        let (got, rep) = stream_convolve(&taps, 64, scheme, &x, &[50, 3, 120], &NoFaults);
        assert_eq!(got.len(), want.len(), "{scheme:?}");
        for (t, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-9, "{scheme:?} t={t}: {a} vs {b}");
        }
        assert!(rep.is_clean(), "{scheme:?}: {rep:?}");
        assert!(rep.frames > 0, "{scheme:?}");
    }
}

#[test]
fn stft_works_with_every_scheme() {
    for scheme in Scheme::ALL {
        let plan = StftPlan::new(128, 64, Window::Hann, FtConfig::new(scheme));
        let len = plan.signal_len(6);
        let x = real_signal(len, 3);
        let mut ws = plan.make_workspace();
        let mut spec = vec![Complex64::ZERO; plan.num_frames(len) * plan.bins()];
        let rep = plan.analyze_into(&x, &mut spec, &NoFaults, &mut ws);
        assert!(rep.is_clean(), "{scheme:?}: {rep:?}");
        let mut back = vec![0.0; len];
        plan.synthesize_into(&spec, &mut back, &NoFaults, &mut ws);
        for t in 1..len - 1 {
            assert!((back[t] - x[t]).abs() < 1e-10, "{scheme:?} t={t}");
        }
    }
}

/// Scripted per-frame faults at covered sites are detected and corrected
/// in the streaming convolver: the output still matches the direct
/// convolution and the `StreamReport` carries the counts.
#[test]
fn convolver_corrects_scripted_faults() {
    let taps = real_signal(9, 4);
    let x = real_signal(300, 5);
    let want = convolve_direct(&x, &taps);
    for scheme in [Scheme::OnlineCompOpt, Scheme::OnlineMemOpt, Scheme::OfflineMem] {
        // The online schemes visit per-sub-FFT sites; the offline scheme
        // protects the whole transform.
        let faults = if scheme == Scheme::OfflineMem {
            vec![
                ScriptedFault::new(
                    Site::WholeFftCompute,
                    2,
                    FaultKind::AddDelta { re: 3e-2, im: 0.0 },
                ),
                ScriptedFault::new(
                    Site::WholeFftCompute,
                    1,
                    FaultKind::AddDelta { re: 0.0, im: -4e-2 },
                )
                .at_occurrence(2),
            ]
        } else {
            vec![
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::First, index: 1 },
                    2,
                    FaultKind::AddDelta { re: 3e-2, im: 0.0 },
                ),
                ScriptedFault::new(
                    Site::SubFftCompute { part: Part::Second, index: 0 },
                    1,
                    FaultKind::AddDelta { re: 0.0, im: -4e-2 },
                )
                .at_occurrence(2),
            ]
        };
        let inj = ScriptedInjector::new(faults);
        let (got, rep) = stream_convolve(&taps, 64, scheme, &x, &[97], &inj);
        assert!(inj.exhausted(), "{scheme:?}: faults not all fired");
        assert!(rep.detected() >= 2, "{scheme:?}: {rep:?}");
        assert!(rep.corrected() >= 1, "{scheme:?}: {rep:?}");
        assert_eq!(rep.ft.uncorrectable, 0, "{scheme:?}");
        for (t, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-9, "{scheme:?} t={t}: {a} vs {b}");
        }
    }
}

/// Memory faults on the packed frames are located and repaired by the
/// memory-protecting schemes mid-stream.
#[test]
fn convolver_corrects_memory_faults() {
    let taps = real_signal(7, 8);
    let x = real_signal(280, 9);
    let want = convolve_direct(&x, &taps);
    let faults = vec![ScriptedFault::new(
        Site::InputMemory,
        11,
        FaultKind::SetValue { re: 40.0, im: -40.0 },
    )
    .at_occurrence(3)];
    let inj = ScriptedInjector::new(faults);
    let (got, rep) = stream_convolve(&taps, 64, Scheme::OnlineMemOpt, &x, &[], &inj);
    assert!(inj.exhausted());
    assert!(rep.ft.mem_detected >= 1, "{rep:?}");
    assert!(rep.ft.mem_corrected >= 1, "{rep:?}");
    for (t, (a, b)) in got.iter().zip(&want).enumerate() {
        assert!((a - b).abs() < 1e-9, "t={t}: {a} vs {b}");
    }
}

/// STFT analysis under scripted faults: the spectrogram equals the clean
/// one bitwise after correction.
#[test]
fn stft_corrects_scripted_faults() {
    let plan = StftPlan::new(256, 128, Window::Hann, FtConfig::new(Scheme::OnlineMemOpt));
    let len = plan.signal_len(7);
    let x = real_signal(len, 11);
    let frames = plan.num_frames(len);
    let mut ws = plan.make_workspace();

    let mut clean = vec![Complex64::ZERO; frames * plan.bins()];
    plan.analyze_into(&x, &mut clean, &NoFaults, &mut ws);

    let inj = ScriptedInjector::new(vec![ScriptedFault::new(
        Site::SubFftCompute { part: Part::First, index: 2 },
        5,
        FaultKind::BitFlip { bit: 60, component: Component::Re },
    )]);
    let mut faulted = vec![Complex64::ZERO; frames * plan.bins()];
    let rep = plan.analyze_into(&x, &mut faulted, &inj, &mut ws);
    assert!(inj.exhausted());
    assert!(rep.detected() >= 1, "{rep:?}");
    assert_eq!(rep.ft.uncorrectable, 0);
    assert_eq!(faulted, clean, "corrected spectrogram must be bitwise clean");
}

/// The pooled scheduler at several worker counts equals the serial
/// engine bitwise (clean), with identical report totals under faults.
#[test]
fn scheduler_matches_serial_at_any_worker_count() {
    let plan = StftPlan::new(128, 32, Window::Hamming, FtConfig::new(Scheme::OnlineMemOpt));
    let len = plan.signal_len(11);
    let x = real_signal(len, 13);
    let frames = plan.num_frames(len);
    let mut ws = plan.make_workspace();
    let mut want = vec![Complex64::ZERO; frames * plan.bins()];
    let want_rep = plan.analyze_into(&x, &mut want, &NoFaults, &mut ws);

    for threads in [1usize, 2, 4, 8] {
        let sched = FrameScheduler::new(Some(threads));
        let mut wss = sched.make_stft_workspaces(&plan);
        let mut got = vec![Complex64::ZERO; frames * plan.bins()];
        let rep = sched.analyze(&plan, &x, &mut got, &NoFaults, &mut wss);
        assert_eq!(got, want, "threads={threads}");
        assert_eq!(rep, want_rep, "threads={threads}");
    }
}

#[test]
fn cola_profile_is_reexported_and_sane() {
    let mut w = vec![0.0; 64];
    Window::Hann.fill(&mut w);
    let (gain, dev) = cola_profile(&w, 32);
    assert!(dev < 1e-12);
    assert!((gain - 1.0).abs() < 1e-12);
}

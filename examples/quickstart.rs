//! Quickstart: a protected FFT, with and without an injected soft error.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ftfft::prelude::*;

fn main() {
    let n = 1 << 14;
    println!("ft-fft quickstart — {n}-point forward FFT\n");

    // A deterministic test signal: both components uniform on (-1, 1).
    let signal = uniform_signal(n, 42);

    // 1. Plain, unprotected transform (the "FFTW" baseline).
    let plain = FtFftPlan::from_spec(&PlanSpec::builder(n).scheme(Scheme::Plain).build());
    let mut x = signal.clone();
    let mut reference = vec![Complex64::ZERO; n];
    plain.execute_alloc(&mut x, &mut reference, &NoFaults);

    // 2. Protected transform: online ABFT with memory fault tolerance and
    //    all of the paper's §4 optimizations.
    let plan = FtFftPlan::from_spec(&PlanSpec::builder(n).scheme(Scheme::OnlineMemOpt).build());
    let mut ws = plan.make_workspace();

    let mut x = signal.clone();
    let mut spectrum = vec![Complex64::ZERO; n];
    let report = plan.execute(&mut x, &mut spectrum, &NoFaults, &mut ws);
    println!("fault-free run:");
    println!("  checks performed      : {}", report.checks);
    println!("  errors detected       : {}", report.total_detected());
    println!("  max part-1 residual   : {:.3e}", report.max_ok_residual_part1);
    println!("  max part-2 residual   : {:.3e}", report.max_ok_residual_part2);
    println!("  output == baseline    : {}", relative_error_inf(&spectrum, &reference) < 1e-12);

    // 3. The same transform with a soft error striking the 7th first-part
    //    sub-FFT and a bit flip hitting the stored input.
    let injector = ScriptedInjector::new(vec![
        ScriptedFault::new(
            Site::SubFftCompute { part: Part::First, index: 7 },
            3,
            FaultKind::AddDelta { re: 1e-3, im: 0.0 },
        ),
        ScriptedFault::new(
            Site::InputMemory,
            1234,
            FaultKind::BitFlip { bit: 60, component: Component::Re },
        ),
    ]);
    let mut x = signal.clone();
    let mut spectrum = vec![Complex64::ZERO; n];
    let report = plan.execute(&mut x, &mut spectrum, &injector, &mut ws);
    println!("\nrun with 1 computational + 1 memory fault injected:");
    println!("  computational detected: {}", report.comp_detected);
    println!("  memory detected       : {}", report.mem_detected);
    println!("  memory corrected      : {}", report.mem_corrected);
    println!(
        "  sub-FFTs recomputed   : {} (out of {})",
        report.subfft_recomputed,
        plan.two().k() + plan.two().m()
    );
    let err = relative_error_inf(&spectrum, &reference);
    println!("  final relative error  : {err:.3e}");
    assert!(err < 1e-10, "online ABFT must deliver a correct spectrum");
    println!("\nboth faults corrected online — no restart of the {n}-point transform needed");
}

//! Parallel in-place FT-FFT on the simulated message-passing machine:
//! 8 ranks, checksummed transposes, communication–computation overlap, and
//! faults injected on every rank (the Table 2/3 scenario).
//!
//! ```text
//! cargo run --release --example parallel_fft [log2n] [ranks]
//! ```

use std::time::Instant;

use ftfft::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let log2n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(18);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let n = 1usize << log2n;

    println!("parallel FT-FFT: 2^{log2n} points on {p} simulated ranks\n");
    let x = uniform_signal(n, 3);
    let sigma0 = SignalDist::Uniform.component_std_dev();

    // Reference from the sequential library.
    let reference = fft(&x);

    println!(
        "{:<14}{:>12}{:>10}{:>12}{:>10}",
        "scheme", "time (ms)", "checks", "corrected", "rel.err"
    );
    for scheme in ParallelScheme::ALL {
        let plan = ParallelFft::new(n, p, scheme, Some(NetworkModel::cluster()), sigma0, 3);
        let t0 = Instant::now();
        let (out, rep) = plan.run(&x, &NoFaults);
        let dt = t0.elapsed();
        let err = relative_error_inf(&out, &reference);
        println!(
            "{:<14}{:>12.2}{:>10}{:>12}{:>10.1e}",
            scheme.label(),
            dt.as_secs_f64() * 1e3,
            rep.checks,
            rep.mem_corrected + rep.comm_corrected,
            err
        );
        assert!(err < 1e-9, "{scheme:?} diverged");
    }

    // Now strike every rank with 2 memory + 2 computational faults.
    println!("\ninjecting 2 memory + 2 computational faults on each of the {p} ranks:");
    let mut faults = Vec::new();
    for r in 0..p {
        faults.push(
            ScriptedFault::new(
                Site::InputMemory,
                13 * (r + 1),
                FaultKind::BitFlip { bit: 59, component: Component::Re },
            )
            .on_rank(r),
        );
        faults.push(
            ScriptedFault::new(
                Site::IntermediateMemory,
                7 * (r + 1),
                FaultKind::SetValue { re: 4.0, im: -4.0 },
            )
            .on_rank(r),
        );
        faults.push(
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::First, index: 1 },
                2,
                FaultKind::AddDelta { re: 1e-2, im: 0.0 },
            )
            .on_rank(r),
        );
        faults.push(
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::Second, index: 0 },
                1,
                FaultKind::AddDelta { re: 0.0, im: 1e-2 },
            )
            .on_rank(r),
        );
    }
    let inj = ScriptedInjector::new(faults);
    let plan =
        ParallelFft::new(n, p, ParallelScheme::OptFtFftw, Some(NetworkModel::cluster()), sigma0, 3);
    let t0 = Instant::now();
    let (out, rep) = plan.run(&x, &inj);
    let dt = t0.elapsed();
    let err = relative_error_inf(&out, &reference);
    println!(
        "  opt-FT-FFTW with {} injected faults: {:.2} ms, err {:.1e}",
        inj.log().len(),
        dt.as_secs_f64() * 1e3,
        err
    );
    println!(
        "  detected: {} comp / {} mem; corrected: {} mem; recomputed sub-FFTs: {}; uncorrectable: {}",
        rep.comp_detected, rep.mem_detected, rep.mem_corrected, rep.subfft_recomputed, rep.uncorrectable
    );
    assert!(err < 1e-9, "faulty run must still produce a correct transform");
    assert_eq!(rep.uncorrectable, 0);
    println!("\nall faults recovered locally — no rank restarted its transform");
}

//! Monte-Carlo fault-injection campaign: measure detection and correction
//! coverage of the online scheme under randomized high-bit flips, the
//! §9.4.3 protocol behind Table 6.
//!
//! ```text
//! cargo run --release --example fault_campaign [runs] [log2n]
//! ```

use ftfft::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let log2n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let n = 1usize << log2n;

    println!("fault campaign: {runs} runs of a 2^{log2n}-point online ABFT FFT");
    println!("one random high-bit flip per run (bits 52..=62, memory regions)\n");

    let plan = FtFftPlan::from_spec(&PlanSpec::builder(n).scheme(Scheme::OnlineMemOpt).build());
    let mut ws = plan.make_workspace();

    // Clean reference.
    let signal = uniform_signal(n, 1);
    let mut x = signal.clone();
    let mut clean = vec![Complex64::ZERO; n];
    plan.execute(&mut x, &mut clean, &NoFaults, &mut ws);

    let mut detected = 0usize;
    let mut corrected_exact = 0usize;
    let mut small_residue = 0usize;
    let mut escaped = 0usize;

    for run in 0..runs {
        let inj =
            RandomInjector::new(run as u64, 1.0, RandomKind::BitFlipInRange { lo: 52, hi: 62 }, 1)
                .with_site_filter(|s| {
                    matches!(s, Site::InputMemory | Site::IntermediateMemory | Site::OutputMemory)
                });
        let mut x = signal.clone();
        let mut out = vec![Complex64::ZERO; n];
        let report = plan.execute(&mut x, &mut out, &inj, &mut ws);

        let injected = inj.log().len();
        let err = relative_error_inf(&out, &clean);
        if injected == 0 {
            continue; // fault landed nowhere (region never reached)
        }
        if report.total_detected() > 0 {
            detected += 1;
        }
        if err < 1e-12 {
            corrected_exact += 1;
        } else if err < 1e-8 {
            small_residue += 1;
        } else if report.total_detected() == 0 {
            escaped += 1;
        }
    }

    println!("{:<34}{:>8}", "outcome", "runs");
    println!("{:<34}{:>8}", "fault detected", detected);
    println!("{:<34}{:>8}", "output exact (err < 1e-12)", corrected_exact);
    println!("{:<34}{:>8}", "small residue (err < 1e-8)", small_residue);
    println!("{:<34}{:>8}", "escaped undetected & damaging", escaped);
    let coverage = 100.0 * corrected_exact as f64 / runs as f64;
    println!("\nfault coverage at 1e-12: {coverage:.1}%");
    assert!(escaped == 0, "no high-bit flip may silently corrupt the output");
}

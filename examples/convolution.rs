//! Fault-tolerant fast convolution: polynomial multiplication via protected
//! forward and inverse FFTs, validated against the direct O(n²) product.
//!
//! Exercises both transform directions of the public API and shows that a
//! convolution pipeline stays correct when soft errors strike any of its
//! three stages (forward FFT of either operand, or the inverse FFT).
//!
//! ```text
//! cargo run --release --example convolution
//! ```

use ftfft::prelude::*;

/// Direct (schoolbook) linear convolution — the correctness oracle.
fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// FFT-based linear convolution with every transform protected by the
/// online ABFT scheme. Returns the product and the merged fault report.
fn convolve_protected(a: &[f64], b: &[f64], injector: &dyn FaultInjector) -> (Vec<f64>, FtReport) {
    let out_len = a.len() + b.len() - 1;
    let n = out_len.next_power_of_two();

    let pad = |v: &[f64]| -> Vec<Complex64> {
        let mut c = vec![Complex64::ZERO; n];
        for (slot, &x) in c.iter_mut().zip(v) {
            *slot = Complex64::new(x, 0.0);
        }
        c
    };

    let fwd = FtFftPlan::from_spec(&PlanSpec::builder(n).scheme(Scheme::OnlineMemOpt).build());
    let mut ws = fwd.make_workspace();
    let mut report = FtReport::new();

    let mut fa = vec![Complex64::ZERO; n];
    let mut fb = vec![Complex64::ZERO; n];
    let mut xa = pad(a);
    let mut xb = pad(b);
    report.merge(&fwd.execute(&mut xa, &mut fa, injector, &mut ws));
    report.merge(&fwd.execute(&mut xb, &mut fb, injector, &mut ws));

    // Pointwise product, then the protected inverse transform. The round-off
    // thresholds of the inverse plan must see the *actual* scale of its
    // input (a product of two spectra), so calibrate σ₀ from the data.
    let mut prod: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
    let sigma_prod =
        (prod.iter().map(|z| z.norm_sqr()).sum::<f64>() / (2.0 * n as f64)).sqrt().max(1e-30);
    let inv = FtFftPlan::from_spec(
        &PlanSpec::builder(n)
            .direction(Direction::Inverse)
            .scheme(Scheme::OnlineMemOpt)
            .sigma0(sigma_prod)
            .build(),
    );
    let mut time = vec![Complex64::ZERO; n];
    let mut ws_inv = inv.make_workspace();
    report.merge(&inv.execute(&mut prod, &mut time, injector, &mut ws_inv));

    let scale = 1.0 / n as f64;
    (time[..out_len].iter().map(|z| z.re * scale).collect(), report)
}

fn main() {
    // Two pseudo-random polynomials of degree 2999.
    let len = 3000;
    let a: Vec<f64> = uniform_signal(len, 11).iter().map(|z| z.re).collect();
    let b: Vec<f64> = uniform_signal(len, 22).iter().map(|z| z.im).collect();
    println!("fault-tolerant convolution of two degree-{} polynomials\n", len - 1);

    let want = convolve_direct(&a, &b);

    // Fault-free.
    let (got, rep) = convolve_protected(&a, &b, &NoFaults);
    let err = got.iter().zip(&want).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
    println!("fault-free : max abs error vs direct = {err:.3e} ({} checks)", rep.checks);
    assert!(err < 1e-8);

    // One fault in each of the three protected transforms.
    let inj = ScriptedInjector::new(vec![
        ScriptedFault::new(
            Site::SubFftCompute { part: Part::First, index: 3 },
            10,
            FaultKind::AddDelta { re: 1e-2, im: 0.0 },
        ),
        ScriptedFault::new(
            Site::SubFftCompute { part: Part::Second, index: 8 },
            4,
            FaultKind::AddDelta { re: 0.0, im: 1e-2 },
        )
        .at_occurrence(1),
        ScriptedFault::new(Site::InputMemory, 555, FaultKind::SetValue { re: 9.0, im: 9.0 })
            .at_occurrence(2),
    ]);
    let (got, rep) = convolve_protected(&a, &b, &inj);
    let err = got.iter().zip(&want).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
    println!(
        "3 faults   : max abs error vs direct = {err:.3e} (detected {}, recomputed {}, mem corrected {})",
        rep.total_detected(),
        rep.subfft_recomputed,
        rep.mem_corrected
    );
    assert!(err < 1e-8, "convolution must stay correct under faults");
    assert!(rep.total_detected() >= 3);
    println!("\nall three faults corrected online; product matches the direct convolution");
}

//! Spectral analysis under soft errors: find the tones buried in a noisy
//! signal while a bit flip strikes mid-transform.
//!
//! A plain FFT silently corrupts the spectrum (spurious peaks / wrong
//! magnitudes); the online ABFT transform detects the error in the
//! offending sub-FFT, recomputes it, and reports the same peaks as a clean
//! run.
//!
//! ```text
//! cargo run --release --example spectral_analysis
//! ```

use ftfft::prelude::*;

/// Synthesizes `n` samples of three tones plus uniform noise.
fn synthesize(n: usize, seed: u64) -> Vec<Complex64> {
    let tones: [(f64, f64); 3] = [(50.0, 1.0), (120.0, 0.7), (333.0, 0.4)];
    let noise = uniform_signal(n, seed);
    (0..n)
        .map(|t| {
            let mut s = noise[t].scale(0.05);
            for &(freq, amp) in &tones {
                let phase = 2.0 * std::f64::consts::PI * freq * t as f64 / n as f64;
                s += Complex64::new(amp * phase.cos(), amp * phase.sin());
            }
            s
        })
        .collect()
}

/// Returns the `count` strongest bins of a spectrum.
fn top_peaks(spectrum: &[Complex64], count: usize) -> Vec<(usize, f64)> {
    let mut mags: Vec<(usize, f64)> =
        spectrum.iter().enumerate().map(|(i, z)| (i, z.norm())).collect();
    mags.sort_by(|a, b| b.1.total_cmp(&a.1));
    mags.truncate(count);
    mags
}

fn main() {
    let n = 1 << 13;
    let signal = synthesize(n, 7);
    println!("spectral analysis of a {n}-sample signal with tones at bins 50, 120, 333\n");

    // Reference spectrum (no faults). The threshold model needs the actual
    // input scale: tones + noise are louder than the default U(-1,1)
    // assumption, so calibrate σ₀ from the signal itself.
    // A pure tone concentrates the whole signal energy into one bin
    // (|X| ~ N·amp instead of the random-signal √N·σ the §8 model assumes),
    // so the round-off floor of the affected sub-FFTs is ~√N× the model
    // value; widen the thresholds accordingly. Injected faults are many
    // orders of magnitude above even the widened η.
    let sigma0 = (signal.iter().map(|z| z.norm_sqr()).sum::<f64>() / (2.0 * n as f64)).sqrt();
    let plan = FtFftPlan::from_spec(
        &PlanSpec::builder(n)
            .scheme(Scheme::OnlineMemOpt)
            .sigma0(sigma0)
            .threshold_scale((n as f64).sqrt())
            .build(),
    );
    let mut ws = plan.make_workspace();
    let mut x = signal.clone();
    let mut clean = vec![Complex64::ZERO; n];
    plan.execute(&mut x, &mut clean, &NoFaults, &mut ws);

    // A high-bit flip strikes the intermediate result of a sub-FFT that
    // contributes to every output bin.
    let fault = || {
        ScriptedInjector::new(vec![ScriptedFault::new(
            Site::SubFftCompute { part: Part::Second, index: 17 },
            5,
            FaultKind::BitFlip { bit: 61, component: Component::Im },
        )])
    };

    // 1. Unprotected run, fault silently corrupts the spectrum. The plain
    //    scheme ignores the injector, so emulate the damage through the
    //    online executor's sites on a no-retry config with a huge
    //    threshold: instead, simply flip the same bit in the clean result
    //    of the corresponding column to show the effect.
    let mut corrupted = clean.clone();
    {
        // The 17th second-part FFT writes bins { j1*m + 17 }.
        let m = plan.two().m();
        let victim = 3 * m + 17;
        FaultKind::BitFlip { bit: 61, component: Component::Im }.apply(&mut corrupted[victim]);
    }

    // 2. Protected run with the same class of fault injected mid-pipeline.
    let inj = fault();
    let mut x = signal.clone();
    let mut protected = vec![Complex64::ZERO; n];
    let report = plan.execute(&mut x, &mut protected, &inj, &mut ws);

    println!("{:<28}{:>10}{:>14}", "spectrum", "top bins", "rel. error");
    let show = |name: &str, spec: &[Complex64]| {
        let peaks = top_peaks(spec, 3);
        let bins: Vec<usize> = peaks.iter().map(|p| p.0).collect();
        let err = relative_error_inf(spec, &clean);
        println!("{name:<28}{:>10?}{err:>14.2e}", bins);
    };
    show("clean (reference)", &clean);
    show("plain FFT + bit flip", &corrupted);
    show("online ABFT + bit flip", &protected);

    println!(
        "\nprotected run report: {} detected, {} sub-FFT recomputed",
        report.total_detected(),
        report.subfft_recomputed
    );
    assert!(relative_error_inf(&protected, &clean) < 1e-10);
    let clean_peaks: Vec<usize> = top_peaks(&clean, 3).iter().map(|p| p.0).collect();
    let prot_peaks: Vec<usize> = top_peaks(&protected, 3).iter().map(|p| p.0).collect();
    assert_eq!(clean_peaks, prot_peaks, "peaks must survive the fault");
    println!("the protected spectrum is bit-for-bit usable; the plain one is corrupted");
}

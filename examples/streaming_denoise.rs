//! Streaming spectral denoising under a soft-error campaign.
//!
//! A noisy multi-tone stream runs through the fault-tolerant streaming
//! pipeline — STFT analysis → spectral gate (zero every bin below a
//! threshold) → overlap-add resynthesis — while scripted soft errors
//! strike the protected frame transforms. The online ABFT schemes detect
//! each fault inside the offending sub-FFT, recompute it, and the
//! denoised stream comes out identical to a fault-free run; the
//! [`StreamReport`] carries the per-stream telemetry a serving system
//! would export.
//!
//! ```text
//! cargo run --release --example streaming_denoise
//! ```

use ftfft::prelude::*;

/// Synthesizes `len` samples of three tones buried in uniform noise.
fn synthesize(len: usize, n_frame: usize, seed: u64) -> Vec<f64> {
    let tones: [(f64, f64); 3] = [(12.0, 1.0), (37.0, 0.6), (111.0, 0.35)];
    let noise = uniform_signal(len, seed);
    (0..len)
        .map(|t| {
            let mut s = 0.35 * noise[t].re;
            for &(bin, amp) in &tones {
                let phase = 2.0 * std::f64::consts::PI * bin * t as f64 / n_frame as f64;
                s += amp * phase.sin();
            }
            s
        })
        .collect()
}

fn rms(x: &[f64]) -> f64 {
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

fn main() {
    let n = 1 << 9; // 512-sample frames
    let hop = n / 2;
    // Tonal signals concentrate energy into single bins (~N·amp instead of
    // the √N·σ a random signal puts there), so widen the model thresholds
    // like every tonal pipeline must; injected faults sit many orders of
    // magnitude above even the widened η.
    let spec = PlanSpec::builder(n)
        .scheme(Scheme::OnlineMemOpt)
        .threshold_scale((n as f64).sqrt())
        .build();
    let plan = StftPlan::from_spec(&spec, hop, Window::Hann);

    let frames = 40;
    let len = plan.signal_len(frames);
    let noisy = synthesize(len, n, 7);
    let clean_tones = {
        let mut pure = synthesize(len, n, 7);
        let noise = uniform_signal(len, 7);
        for (p, z) in pure.iter_mut().zip(&noise) {
            *p -= 0.35 * z.re;
        }
        pure
    };
    println!("streaming denoise: {frames} frames of {n} samples (hop {hop}), Hann window\n");

    // The fault campaign: computational bit flips and a memory fault
    // spread across the stream's protected frame transforms.
    let campaign = || {
        ScriptedInjector::new(vec![
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::First, index: 3 },
                5,
                FaultKind::BitFlip { bit: 60, component: Component::Re },
            ),
            ScriptedFault::new(
                Site::SubFftCompute { part: Part::Second, index: 1 },
                2,
                FaultKind::AddDelta { re: 0.0, im: 50.0 },
            )
            .at_occurrence(17),
            ScriptedFault::new(Site::InputMemory, 23, FaultKind::SetValue { re: 30.0, im: 30.0 })
                .at_occurrence(9),
        ])
    };

    let denoise = |injector: &dyn FaultInjector| -> (Vec<f64>, StreamReport) {
        let mut ws = plan.make_workspace();
        let mut spec = vec![Complex64::ZERO; plan.num_frames(len) * plan.bins()];
        let mut report = plan.analyze_into(&noisy, &mut spec, injector, &mut ws);

        // Spectral gate: keep only bins carrying real tone energy. A tone
        // of amplitude a lands ~a·n/4 in its Hann-windowed bin (≥ 45
        // here); the noise floor sits around σ·√(n·Σw²/n)/√2 ≈ 2.
        let gate = 0.04 * n as f64;
        for bin in spec.iter_mut() {
            if bin.norm() < gate {
                *bin = Complex64::ZERO;
            }
        }

        let mut out = vec![0.0; len];
        report.merge(&plan.synthesize_into(&spec, &mut out, injector, &mut ws));
        (out, report)
    };

    let (want, clean_rep) = denoise(&NoFaults);
    assert!(clean_rep.is_clean(), "fault-free run must be clean: {clean_rep:?}");

    let inj = campaign();
    let (got, rep) = denoise(&inj);
    assert!(inj.exhausted(), "every scripted fault must fire");

    let interior = hop..len - hop;
    let noise_before = rms(&noisy[interior.clone()]
        .iter()
        .zip(&clean_tones[interior.clone()])
        .map(|(a, b)| a - b)
        .collect::<Vec<_>>());
    let noise_after = rms(&got[interior.clone()]
        .iter()
        .zip(&clean_tones[interior.clone()])
        .map(|(a, b)| a - b)
        .collect::<Vec<_>>());

    println!("{:<34}{:>12}", "stream", "residual rms");
    println!("{:<34}{:>12.4}", "noisy input (vs pure tones)", noise_before);
    println!("{:<34}{:>12.4}", "denoised under fault campaign", noise_after);

    println!("\nStreamReport:");
    println!("  frames processed : {}", rep.frames);
    println!("  samples in / out : {} / {}", rep.samples_in, rep.samples_out);
    println!("  checks performed : {}", rep.ft.checks);
    println!("  faults detected  : {}", rep.detected());
    println!("  faults corrected : {}", rep.corrected());
    println!("  uncorrectable    : {}", rep.ft.uncorrectable);

    assert_eq!(rep.frames, 2 * frames as u64, "analysis + synthesis frames");
    assert!(rep.detected() >= 3, "all three campaign faults must be detected: {rep:?}");
    assert_eq!(rep.ft.uncorrectable, 0);
    // The gate strips the noise-only bins; what survives is the noise
    // inside the handful of kept tone bins.
    assert!(noise_after < 0.5 * noise_before, "gate must strip most of the noise");
    // The corrected stream equals the fault-free stream: computational
    // faults recompute bitwise, the memory repair reconstructs the struck
    // element from its checksum (exact to round-off).
    let max_diff = got.iter().zip(&want).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    assert!(max_diff < 1e-6, "corrected output must equal the fault-free run (diff {max_diff:e})");
    println!("\nall faults corrected online; denoised stream matches the fault-free one");
}
